"""A reference functional simulator for small mappings.

The analytical model in :mod:`repro.model.access_counts` computes access
counts in closed form. This module *executes* a mapping instead: it walks
the remaindered loopnest in true temporal order, tracks which tile every
buffer instance holds, and counts fills/reads/drains by change detection —
ground truth that the analytical formulas are checked against in
``tests/test_reference_sim.py``.

Semantics implemented (matching Eq. 5):

* a loop runs ``P`` iterations, or ``R`` on the *last path* — when every
  enclosing loop of the same dimension sits at its final index;
* spatial loops enumerate parallel instances; one temporal step is one
  distinct combination of temporal indices (instances run in lockstep, so
  a short remainder pass hides behind full sibling passes);
* a storage level instance refills when the tile it must hold (the
  per-relevant-dim coordinate range induced by the loops above it)
  changes; identical simultaneous deliveries to sibling instances are
  multicast (one parent read); simultaneous partial-sum drains of the same
  output tile are spatially reduced (one parent write); revisited output
  tiles are refilled from the parent;
* the innermost keeper additionally feeds per-lane operand registers,
  giving the element-granularity reads the analytical compute boundary
  models.

Only feasible for toy-sized problems — cost is O(iteration space).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.arch.spec import Architecture
from repro.exceptions import ReproError
from repro.mapping.nest import Mapping, PlacedLoop
from repro.model.dataflow import tensor_paths
from repro.problem.tensor import TensorSpec
from repro.problem.workload import Workload

MAX_SIMULATED_POINTS = 200_000


class SimulationTooLargeError(ReproError):
    """The mapping's iteration space exceeds the simulator's budget."""


@dataclass
class SimulationResult:
    """Ground-truth execution statistics of one mapping.

    Attributes:
        macs: total compute operations executed.
        cycles: distinct temporal steps.
        reads: element reads per (level_index, tensor), multicast-deduped.
        writes: element writes per (level_index, tensor).
        coverage: per-dim distinct points visited (must equal dim sizes).
        peak_tile_words: largest tile footprint observed per
            (level_index, tensor), in elements.
    """

    macs: int = 0
    cycles: int = 0
    reads: Dict[Tuple[int, str], int] = field(default_factory=dict)
    writes: Dict[Tuple[int, str], int] = field(default_factory=dict)
    coverage: Dict[str, int] = field(default_factory=dict)
    peak_tile_words: Dict[Tuple[int, str], int] = field(default_factory=dict)

    def utilization(self, total_units: int) -> float:
        """MAC fraction of ``total_units`` over the executed cycles."""
        if self.cycles == 0:
            return 0.0
        return self.macs / (self.cycles * total_units)

    def _bump(self, counter: Dict, key: Tuple, amount: int) -> None:
        counter[key] = counter.get(key, 0) + amount


@dataclass(frozen=True)
class _DimPoint:
    """One leaf of a dimension's loop tree."""

    coordinate: int
    indices: Tuple[int, ...]


def _enumerate_dim_points(loops: Sequence[PlacedLoop]) -> List[_DimPoint]:
    """Enumerate a dimension's leaves with last-path remainder semantics."""
    points: List[_DimPoint] = []

    def recurse(depth: int, on_last_path: bool, indices: Tuple[int, ...]) -> None:
        if depth == len(loops):
            points.append(_DimPoint(len(points), indices))
            return
        loop = loops[depth].loop
        trips = loop.remainder if on_last_path else loop.bound
        for i in range(trips):
            recurse(depth + 1, on_last_path and i == trips - 1, indices + (i,))

    recurse(0, True, ())
    return points


def _tile_table(
    points: Sequence[_DimPoint], prefix_len: int
) -> Dict[Tuple[int, ...], Tuple[int, int]]:
    """``{loop-index prefix: (tile start coordinate, tile extent)}``."""
    table: Dict[Tuple[int, ...], Tuple[int, int]] = {}
    for point in points:
        key = point.indices[:prefix_len]
        if key not in table:
            table[key] = (point.coordinate, 1)
        else:
            start, extent = table[key]
            table[key] = (start, extent + 1)
    return table


@dataclass
class _BoundaryPlan:
    """Precomputed lookup data for one (tensor, parent->child) boundary."""

    tensor: TensorSpec
    parent: int
    child: int  # storage level index; compute boundary uses a pseudo index
    prefix_lens: Dict[str, int]
    tables: Dict[str, Dict[Tuple[int, ...], Tuple[int, int]]]
    instance_slots: Dict[str, List[int]]
    parent_side_slots: Dict[str, List[int]]
    dims: Tuple[str, ...]
    count_child_writes: bool  # False for the register pseudo-level


class _OutputState:
    """Per-instance accumulation state of an output boundary."""

    __slots__ = ("held_tile", "held_footprint", "history")

    def __init__(self) -> None:
        self.held_tile: Optional[Tuple] = None
        self.held_footprint: int = 0
        self.history: Set[Tuple] = set()


def simulate(
    arch: Architecture,
    workload: Workload,
    mapping: Mapping,
    max_points: int = MAX_SIMULATED_POINTS,
) -> SimulationResult:
    """Execute ``mapping`` on ``workload``/``arch``; see module docstring.

    Raises :class:`SimulationTooLargeError` when the iteration space
    exceeds ``max_points``.
    """
    return _Simulator(arch, workload, mapping, max_points).run()


class _Simulator:
    REGISTER_LEVEL = -1  # pseudo child level for compute-boundary plans

    def __init__(
        self,
        arch: Architecture,
        workload: Workload,
        mapping: Mapping,
        max_points: int,
    ) -> None:
        self.arch = arch
        self.workload = workload
        self.mapping = mapping
        self.max_points = max_points
        self.placed = [p for p in mapping.placed_loops() if p.loop.bound > 1]
        self.paths = tensor_paths(arch, workload, mapping)
        self.dims = tuple(workload.dim_names)
        self.dim_loops = {
            d: [p for p in self.placed if p.loop.dim == d] for d in self.dims
        }
        self.dim_points = {
            d: _enumerate_dim_points(self.dim_loops[d]) for d in self.dims
        }

    # --------------------------------------------------------------- plans

    def _build_plans(self) -> List[_BoundaryPlan]:
        plans: List[_BoundaryPlan] = []
        for path in self.paths.values():
            tensor = path.tensor
            relevant = tensor.relevant_dims
            for boundary in path.boundaries:
                boundary_position = boundary.boundary_position
                child = boundary.child_level
                if child is None:
                    child = self.REGISTER_LEVEL
                prefix_lens = {}
                tables = {}
                instance_slots = {}
                parent_side_slots = {}
                for d in self.dims:
                    loops = self.dim_loops[d]
                    prefix_lens[d] = sum(
                        1 for p in loops if p.position < boundary_position
                    )
                    if d in relevant:
                        tables[d] = _tile_table(self.dim_points[d], prefix_lens[d])
                    instance_slots[d] = [
                        i
                        for i, p in enumerate(loops)
                        if p.loop.spatial and p.position < boundary_position
                    ]
                    parent_side_slots[d] = [
                        i
                        for i, p in enumerate(loops)
                        if p.loop.spatial
                        and p.position < boundary.parent_position
                    ]
                plans.append(
                    _BoundaryPlan(
                        tensor=tensor,
                        parent=boundary.parent_level,
                        child=child,
                        prefix_lens=prefix_lens,
                        tables=tables,
                        instance_slots=instance_slots,
                        parent_side_slots=parent_side_slots,
                        dims=self.dims,
                        count_child_writes=child != self.REGISTER_LEVEL,
                    )
                )
        return plans

    # ----------------------------------------------------------------- run

    def run(self) -> SimulationResult:
        """Execute the mapping in temporal order and collect statistics."""
        total_points = 1
        for d in self.dims:
            total_points *= len(self.dim_points[d])
        if total_points > self.max_points:
            raise SimulationTooLargeError(
                f"iteration space has {total_points} points "
                f"(budget {self.max_points})"
            )

        result = SimulationResult()
        for d in self.dims:
            result.coverage[d] = len({p.coordinate for p in self.dim_points[d]})

        # Global temporal order: indices of temporal loops in nest order.
        temporal_slot_map: List[Tuple[str, int]] = []
        for p in sorted(self.placed, key=lambda q: q.position):
            if not p.loop.spatial:
                slot = self.dim_loops[p.loop.dim].index(p)
                temporal_slot_map.append((p.loop.dim, slot))

        def signature(by_dim: Dict[str, _DimPoint]) -> Tuple[int, ...]:
            return tuple(
                by_dim[d].indices[slot] for d, slot in temporal_slot_map
            )

        combos = [
            dict(zip(self.dims, combo))
            for combo in itertools.product(
                *(self.dim_points[d] for d in self.dims)
            )
        ]
        combos.sort(key=signature)

        plans = self._build_plans()
        held_inputs: Dict[Tuple, Tuple] = {}
        output_states: Dict[Tuple, _OutputState] = {}

        current_signature: Optional[Tuple[int, ...]] = None
        step_groups: Dict[Tuple, Set] = {}
        steps = 0
        for by_dim in combos:
            sig = signature(by_dim)
            if sig != current_signature:
                current_signature = sig
                step_groups = {}
                steps += 1
            result.macs += 1
            for plan in plans:
                if plan.tensor.is_output:
                    self._visit_output(plan, by_dim, output_states, step_groups, result)
                else:
                    self._visit_input(plan, by_dim, held_inputs, step_groups, result)

        result.cycles = steps
        self._flush_outputs(output_states, result)
        return result

    # ---------------------------------------------------------- visit logic

    def _tile_and_instance(self, plan: _BoundaryPlan, by_dim):
        tile_key = []
        extents = {}
        for d in plan.dims:
            if d not in plan.tables:
                continue
            prefix = by_dim[d].indices[: plan.prefix_lens[d]]
            start, extent = plan.tables[d][prefix]
            tile_key.append((d, start, extent))
            extents[d] = extent
        instance = tuple(
            tuple(by_dim[d].indices[i] for i in plan.instance_slots[d])
            for d in plan.dims
        )
        parent_instance = tuple(
            tuple(by_dim[d].indices[i] for i in plan.parent_side_slots[d])
            for d in plan.dims
        )
        return tuple(tile_key), extents, instance, parent_instance

    def _visit_input(self, plan, by_dim, held, step_groups, result) -> None:
        tile_key, extents, instance, parent_instance = self._tile_and_instance(
            plan, by_dim
        )
        state_key = (plan.child, plan.tensor.name, instance)
        if held.get(state_key) == tile_key:
            return
        held[state_key] = tile_key
        footprint = plan.tensor.tile_footprint(extents)
        child_key = (plan.child, plan.tensor.name)
        if plan.count_child_writes:
            result._bump(result.writes, child_key, footprint)
            if footprint > result.peak_tile_words.get(child_key, 0):
                result.peak_tile_words[child_key] = footprint
        group = step_groups.setdefault(("in", plan.child, plan.tensor.name), set())
        event = (parent_instance, tile_key)
        if event not in group:
            group.add(event)
            result._bump(result.reads, (plan.parent, plan.tensor.name), footprint)

    def _visit_output(self, plan, by_dim, states, step_groups, result) -> None:
        tile_key, extents, instance, parent_instance = self._tile_and_instance(
            plan, by_dim
        )
        state_key = (plan.child, plan.tensor.name, instance)
        state = states.setdefault(state_key, _OutputState())
        if state.held_tile == tile_key:
            return
        footprint = plan.tensor.tile_footprint(extents)
        child_key = (plan.child, plan.tensor.name)
        if plan.count_child_writes and footprint > result.peak_tile_words.get(
            child_key, 0
        ):
            result.peak_tile_words[child_key] = footprint
        # Drain the displaced tile (spatially reduced at the parent).
        if state.held_tile is not None:
            self._drain(plan, state, parent_instance, step_groups, result)
        state.held_tile = tile_key
        state.held_footprint = footprint
        # Refill if this tile was partially accumulated here before.
        if tile_key in state.history:
            if plan.count_child_writes:
                result._bump(result.writes, child_key, footprint)
            group = step_groups.setdefault(
                ("refill", plan.child, plan.tensor.name), set()
            )
            event = (parent_instance, tile_key)
            if event not in group:
                group.add(event)
                result._bump(
                    result.reads, (plan.parent, plan.tensor.name), footprint
                )
        state.history.add(tile_key)

    def _drain(self, plan, state, parent_instance, step_groups, result) -> None:
        child_key = (plan.child, plan.tensor.name)
        if plan.count_child_writes:
            result._bump(result.reads, child_key, state.held_footprint)
        group = step_groups.setdefault(
            ("drain", plan.child, plan.tensor.name), set()
        )
        event = (parent_instance, state.held_tile)
        if event not in group:
            group.add(event)
            result._bump(
                result.writes, (plan.parent, plan.tensor.name), state.held_footprint
            )

    def _flush_outputs(self, states, result) -> None:
        """Final drain of every resident output tile (end of execution).

        Spatial reduction still applies: sibling instances holding the same
        tile for the same parent instance reduce to one parent write.
        """
        plans = {}
        flush_groups: Dict[Tuple, Set] = {}
        for plan in self._build_plans():
            if plan.tensor.is_output:
                plans[(plan.child, plan.tensor.name)] = plan
        for (child, tensor_name, instance), state in states.items():
            if state.held_tile is None:
                continue
            plan = plans[(child, tensor_name)]
            parent_instance = tuple(
                instance[i][: len(plan.parent_side_slots[d])]
                for i, d in enumerate(plan.dims)
            )
            self._drain(plan, state, parent_instance, flush_groups, result)
            state.held_tile = None

"""Dataflow structure: which levels keep each tensor, and nest boundaries.

A tensor flows through the subset of storage levels that keep it (bypassed
levels are skipped, like weights skipping the Eyeriss GLB). Traffic between
two consecutive keeper levels is governed by the loops above the *child*
keeper's storage point; this module extracts those boundaries so the access
counting in :mod:`repro.model.access_counts` can stay purely arithmetical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.arch.spec import Architecture
from repro.exceptions import SpecError
from repro.mapping.nest import Mapping, PlacedLoop
from repro.problem.tensor import TensorSpec
from repro.problem.workload import Workload


@dataclass(frozen=True)
class Boundary:
    """One parent->child transfer segment of a tensor's path.

    Attributes:
        parent_level: storage level index serving the data (the ``a`` side).
        child_level: storage level index receiving it, or ``None`` for the
            compute units.
        boundary_position: global nest position of the child's storage
            point; loops at smaller positions iterate over distinct child
            tiles. ``None`` child => one past the last loop (everything is
            above the compute boundary).
        parent_position: global nest position of the parent's storage point,
            used to distinguish spatial fanouts *between* parent and child
            (multicast from the parent) from fanouts *above* the parent
            (independent parent instances).
    """

    parent_level: int
    child_level: Optional[int]
    boundary_position: int
    parent_position: int


@dataclass(frozen=True)
class TensorPath:
    """The keeper levels and transfer boundaries of one tensor."""

    tensor: TensorSpec
    keeper_levels: Tuple[int, ...]
    boundaries: Tuple[Boundary, ...]


def storage_positions(mapping: Mapping) -> List[int]:
    """Global nest position of each storage level's storage point.

    Level ``i``'s storage point precedes its own temporal block; equals the
    number of loops at levels ``< i``.
    """
    positions = []
    count = 0
    for nest in mapping.levels:
        positions.append(count)
        count += len(nest.temporal) + len(nest.spatial)
    return positions


def total_positions(mapping: Mapping) -> int:
    """Number of loops in the global nest (the compute boundary position)."""
    return sum(len(n.temporal) + len(n.spatial) for n in mapping.levels)


def keeper_levels(
    arch: Architecture,
    tensor_name: str,
    mapping: Optional[Mapping] = None,
) -> List[int]:
    """Indices of the storage levels that keep ``tensor_name`` (outer first).

    A level keeps a tensor when the architecture allows it (``keeps``) and
    the mapping does not bypass it.
    """
    return [
        index
        for index, level in enumerate(arch.levels)
        if level.keeps_tensor(tensor_name)
        and not (mapping is not None and mapping.bypasses(level.name, tensor_name))
    ]


def tensor_paths(
    arch: Architecture, workload: Workload, mapping: Mapping
) -> Dict[str, TensorPath]:
    """Build the transfer path of every tensor of ``workload``.

    Raises :class:`SpecError` if a tensor has no keeper level or if the
    outermost level bypasses it (data must originate somewhere).
    """
    positions = storage_positions(mapping)
    compute_boundary = total_positions(mapping)
    paths: Dict[str, TensorPath] = {}
    for tensor in workload.tensors:
        keepers = keeper_levels(arch, tensor.name, mapping)
        if not keepers:
            raise SpecError(
                f"tensor {tensor.name} is bypassed at every level of {arch.name}"
            )
        if keepers[0] != 0:
            raise SpecError(
                f"tensor {tensor.name} must be kept at the outermost level "
                f"of {arch.name}"
            )
        boundaries: List[Boundary] = []
        for parent, child in zip(keepers, keepers[1:]):
            boundaries.append(
                Boundary(
                    parent_level=parent,
                    child_level=child,
                    boundary_position=positions[child],
                    parent_position=positions[parent],
                )
            )
        boundaries.append(
            Boundary(
                parent_level=keepers[-1],
                child_level=None,
                boundary_position=compute_boundary,
                parent_position=positions[keepers[-1]],
            )
        )
        paths[tensor.name] = TensorPath(
            tensor=tensor,
            keeper_levels=tuple(keepers),
            boundaries=tuple(boundaries),
        )
    return paths


def nontrivial_loops(mapping: Mapping) -> List[PlacedLoop]:
    """Placed loops with bound > 1 (bound-1 loops tile nothing)."""
    return [p for p in mapping.placed_loops() if p.loop.bound > 1]


def innermost_relevant_temporal_position(
    loops: List[PlacedLoop],
    relevant_dims: frozenset,
    boundary_position: int,
) -> int:
    """Position of the innermost relevant *temporal* loop above a boundary.

    Returns -1 when there is none. Irrelevant temporal loops outside this
    position force refetch of the child's tile (the tile changes inside
    them); irrelevant loops inside it enjoy reuse. Relevant *spatial* loops
    do not force refetch: spatial distribution is static, so each child
    instance's tile is unchanged by outer irrelevant iterations.
    """
    best = -1
    for placed in loops:
        if placed.position >= boundary_position:
            continue
        if placed.loop.spatial:
            continue
        if placed.loop.dim in relevant_dims:
            best = max(best, placed.position)
    return best

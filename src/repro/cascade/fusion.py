"""Inter-layer fusion accounting over a chain of evaluated layers.

Model: consecutive layers ``i -> i+1`` are *fusable* when layer ``i``'s
full output tensor fits in a reserved slice of the staging buffer (the
first bounded on-chip level). A fused boundary keeps the activation
on-chip: layer ``i`` stops writing it to DRAM and layer ``i+1`` stops
reading it back, saving

    ``words x (DRAM write energy + DRAM read energy)``

and the corresponding DRAM traffic. Per-layer compute and on-chip traffic
are unchanged — fusion composes with, rather than replaces, the per-layer
mapping choice (which is the paper's framing of coarse- vs fine-grained
optimization).

This is deliberately a first-order model: it does not re-tile layers
jointly (pipelined fusion), and it reserves buffer capacity statically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.arch.spec import Architecture
from repro.core.report import format_table
from repro.energy.accelergy import estimate_energy_table
from repro.energy.table import EnergyTable
from repro.exceptions import SpecError
from repro.model.evaluator import Evaluation
from repro.problem.workload import Workload


@dataclass(frozen=True)
class CascadeStage:
    """One layer of a cascade: its workload and its evaluated mapping."""

    workload: Workload
    evaluation: Evaluation

    def __post_init__(self) -> None:
        if not self.evaluation.valid:
            raise SpecError(
                f"cascade stage {self.workload.name} has an invalid evaluation"
            )

    @property
    def output_words(self) -> int:
        return self.workload.tensor_size(self.workload.output.name)


@dataclass
class CascadeResult:
    """Outcome of evaluating a layer chain with fusion.

    ``fused`` flags each inter-stage boundary; totals include the fusion
    savings. ``baseline_energy_pj`` is the unfused sum for comparison.
    """

    stages: List[CascadeStage] = field(default_factory=list)
    fused: List[bool] = field(default_factory=list)
    baseline_energy_pj: float = 0.0
    energy_pj: float = 0.0
    cycles: int = 0
    dram_words_saved: int = 0

    @property
    def edp(self) -> float:
        return self.energy_pj * self.cycles

    @property
    def baseline_edp(self) -> float:
        return self.baseline_energy_pj * self.cycles

    @property
    def energy_saving_fraction(self) -> float:
        if self.baseline_energy_pj == 0:
            return 0.0
        return 1.0 - self.energy_pj / self.baseline_energy_pj


def _staging_level(arch: Architecture):
    """The first bounded level under DRAM — where activations would stay."""
    for level in arch.levels[1:]:
        if level.total_capacity_words is not None:
            return level
    raise SpecError(f"architecture {arch.name} has no bounded staging level")


def evaluate_cascade(
    arch: Architecture,
    stages: Sequence[Tuple[Workload, Evaluation]],
    energy_table: Optional[EnergyTable] = None,
    reserve_fraction: float = 0.5,
) -> CascadeResult:
    """Evaluate a chain of layers with inter-layer fusion where it fits.

    Args:
        arch: the accelerator (all stages run on it sequentially).
        stages: ``(workload, evaluation)`` per layer, in dataflow order.
        energy_table: pricing for the saved DRAM accesses (estimated when
            omitted).
        reserve_fraction: fraction of the staging buffer that may hold a
            resident inter-layer activation (the rest keeps serving the
            running layer's tiles).
    """
    if not 0.0 < reserve_fraction <= 1.0:
        raise SpecError("reserve_fraction must be in (0, 1]")
    table = energy_table or estimate_energy_table(arch)
    staging = _staging_level(arch)
    budget = int(staging.total_capacity_words * reserve_fraction)
    dram = arch.levels[0]

    result = CascadeResult(
        stages=[CascadeStage(w, e) for w, e in stages],
    )
    result.baseline_energy_pj = sum(e.energy_pj for _, e in stages)
    result.energy_pj = result.baseline_energy_pj
    result.cycles = sum(e.cycles for _, e in stages)

    dram_round_trip_pj = table.write_pj(dram.name) + table.read_pj(dram.name)
    for producer, consumer in zip(result.stages, result.stages[1:]):
        intermediate_words = producer.output_words
        fits = intermediate_words <= budget
        keeps = staging.keeps_tensor(producer.workload.output.name)
        fused = fits and keeps
        result.fused.append(fused)
        if fused:
            result.dram_words_saved += 2 * intermediate_words
            result.energy_pj -= intermediate_words * dram_round_trip_pj
    return result


def format_cascade(result: CascadeResult) -> str:
    """Render the cascade: per stage, plus fusion boundaries and totals."""
    rows = []
    for index, stage in enumerate(result.stages):
        fused_in = result.fused[index - 1] if index > 0 else False
        rows.append(
            [
                stage.workload.name,
                stage.evaluation.energy_pj,
                stage.evaluation.cycles,
                stage.output_words,
                "on-chip" if fused_in else ("-" if index == 0 else "DRAM"),
            ]
        )
    rows.append(
        [
            "TOTAL (fused)",
            result.energy_pj,
            result.cycles,
            result.dram_words_saved,
            f"-{result.energy_saving_fraction:.1%} energy",
        ]
    )
    return format_table(
        ["layer", "energy pJ", "cycles", "output words", "input from"],
        rows,
        title="Cascade with inter-layer fusion",
    )

"""Multi-layer cascades: composing per-layer mappings with fusion.

The paper's introduction situates Ruby among fine-grained per-operation
optimizations and notes they compose with coarse-grained vertical
scheduling (operator fusion, TVM/Tangram-style). This package provides
that composition: evaluate a chain of layers whose intermediate
activations can stay on-chip, skipping the DRAM round trip, on top of
whatever per-layer mappings the mapper found.
"""

from repro.cascade.fusion import (
    CascadeResult,
    CascadeStage,
    evaluate_cascade,
    format_cascade,
)

__all__ = [
    "CascadeResult",
    "CascadeStage",
    "evaluate_cascade",
    "format_cascade",
]

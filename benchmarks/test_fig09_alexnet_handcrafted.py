"""E7 (Fig. 9): AlexNet layer 2 — handcrafted vs PFM vs Ruby-S.

Claims checked on the Eyeriss-like 14x12 baseline:

* the handcrafted strip-mined mapping out-utilizes anything PFM can
  generate (paper: 85% vs 71%; ours: 80.4% vs ~64% — the 27-wide OFM dim
  cannot tile a 14-wide axis with perfect factors);
* Ruby-S matches or exceeds the handcrafted utilization (paper: 85%);
* Ruby-S beats the handcrafted mapping on EDP and energy (paper: -16%
  EDP, -10% energy).
"""

from conftest import run_once

from repro.experiments.fig09 import format_fig9, run_fig9


def test_fig9_alexnet_layer2(benchmark, bench_scale):
    result = run_once(
        benchmark,
        lambda: run_fig9(
            seeds=(1, 2, 3),
            max_evaluations=3_000 * bench_scale,
            patience=1_000 * bench_scale,
        ),
    )
    print("\n" + format_fig9(result))

    handcrafted = result.handcrafted
    # Handcrafted folding: 135 of 168 PEs active.
    assert abs(handcrafted.utilization - 135 / 168) < 1e-6

    # PFM cannot reach the handcrafted utilization.
    assert result.peak_utilization["pfm"].utilization < handcrafted.utilization

    # Ruby-S matches (here: exceeds) the handcrafted utilization.
    assert (
        result.peak_utilization["ruby-s"].utilization
        >= handcrafted.utilization * 0.95
    )

    # Ruby-S improves EDP over the handcrafted mapping (paper: 16%).
    assert result.edp_improvement_over_handcrafted() > 5.0

    # And at least matches PFM's best EDP.
    assert (
        result.best_edp["ruby-s"].edp <= result.best_edp["pfm"].edp * 1.02
    )

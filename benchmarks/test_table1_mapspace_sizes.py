"""E5 (Table I): mapspace sizes for a rank-1 tensor, fanout 9.

Claims checked: PFM < Ruby-S << Ruby-T <= Ruby at every size; PFM grows
with the divisor structure (tiny even at 4096); Ruby grows ~linearly in
D x fanout; Ruby-S growth is bounded by the fanout times the divisor
structure.
"""

from conftest import run_once

from repro.experiments.table01 import format_table1, run_table1

SIZES = (3, 16, 100, 500, 1027, 4096)


def test_table1_sizes(benchmark):
    result = run_once(benchmark, lambda: run_table1(dimension_sizes=SIZES))
    print("\n" + format_table1(result))

    for size in SIZES:
        row = result.row(size)
        assert row["pfm"] <= row["ruby-s"] <= row["ruby"], row
        assert row["ruby-t"] <= row["ruby"], row
        if size > 3:
            assert row["pfm"] < row["ruby-s"] < row["ruby"], row

    # PFM stays tiny even at 4096 (= 2^12: 14 two-part splits per level).
    assert result.row(4096)["pfm"] < 200
    # The prime 1027 = 13*79 exposes the misalignment: almost no perfect
    # splits, but Ruby-S still offers ~9 spatial choices per divisor.
    assert result.row(1027)["pfm"] < 12
    assert result.row(1027)["ruby-s"] > 2 * result.row(1027)["pfm"]
    # Ruby explodes roughly like D x fanout.
    assert result.row(4096)["ruby"] > 10_000
    # Ruby-S expansion stays manageable (paper: "favorable trade-off").
    assert result.row(4096)["ruby-s"] < result.row(4096)["ruby"] / 20

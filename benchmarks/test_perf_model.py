"""Performance micro-benchmarks for the cost model and mapspace sampler.

Evaluation throughput is what makes mapspace search practical — Timeloop's
headline feature is evaluating thousands of mappings per second, and the
Ruby paper's methodology leans on that. These benches use pytest-benchmark
properly (many timed rounds) and guard against throughput regressions.
"""

import random

import pytest

from repro.arch import eyeriss_like
from repro.mapspace import ruby_s_mapspace
from repro.mapspace.constraints import eyeriss_row_stationary
from repro.model import Evaluator
from repro.zoo.resnet50 import RESNET50_LAYERS


@pytest.fixture(scope="module")
def setting():
    arch = eyeriss_like()
    by_name = {layer.name: layer for layer, _ in RESNET50_LAYERS}
    workload = by_name["conv3_3x3"].workload()
    space = ruby_s_mapspace(arch, workload, eyeriss_row_stationary())
    evaluator = Evaluator(arch, workload)
    rng = random.Random(0)
    mappings = [space.sample(rng) for _ in range(64)]
    return space, evaluator, mappings


def test_perf_sample(benchmark, setting):
    space, _, _ = setting
    rng = random.Random(1)
    benchmark(lambda: space.sample(rng))


def test_perf_evaluate(benchmark, setting):
    _, evaluator, mappings = setting
    state = {"i": 0}

    def evaluate_one():
        state["i"] = (state["i"] + 1) % len(mappings)
        return evaluator.evaluate(mappings[state["i"]])

    result = benchmark(evaluate_one)
    assert result is not None


def test_perf_sample_and_evaluate(benchmark, setting):
    # The end-to-end search inner loop; this is the number that determines
    # wall-clock per 1000-mapping search.
    space, evaluator, _ = setting
    rng = random.Random(2)
    benchmark(lambda: evaluator.evaluate(space.sample(rng)))

"""Ablation benches for the reproduction's design choices (see DESIGN.md).

Not a paper artifact — these justify modelling decisions:

* per-axis (2-D mesh) spatial modelling is what creates the misalignment
  Ruby-S exploits;
* the structured imperfect-bound sampler lets Ruby-S recover PFM-quality
  mappings on aligned layers at small budgets;
* better search (genetic) composes with the Ruby-S mapspace, supporting
  the paper's orthogonality claim.
"""

from conftest import run_once

from repro.experiments.ablations import (
    format_mesh_ablation,
    format_sampler_ablation,
    format_search_ablation,
    run_mesh_ablation,
    run_sampler_ablation,
    run_search_ablation,
)


def test_mesh_ablation(benchmark, bench_scale):
    result = run_once(
        benchmark,
        lambda: run_mesh_ablation(max_evaluations=3_000 * bench_scale),
    )
    print("\n" + format_mesh_ablation(result))
    # Flattening the mesh rescues PFM: most of the misalignment gap closes.
    assert result.pfm_flat.utilization > result.pfm_mesh.utilization * 1.15
    # On the real 2-D mesh only Ruby-S reaches flat-PFM territory.
    assert result.ruby_s_mesh.utilization > result.pfm_mesh.utilization * 1.15


def test_sampler_ablation(benchmark, bench_scale):
    result = run_once(
        benchmark,
        lambda: run_sampler_ablation(max_evaluations=3_000 * bench_scale),
    )
    print("\n" + format_sampler_ablation(result))
    # Structured sampling is at least as good as uniform on aligned layers.
    assert result.structured.edp <= result.uniform.edp * 1.001
    # And lands within 25% of the PFM reference (uniform typically doesn't).
    assert result.structured.edp <= result.pfm_reference.edp * 1.25


def test_search_ablation(benchmark, bench_scale):
    result = run_once(benchmark, lambda: run_search_ablation())
    print("\n" + format_search_ablation(result))
    # The genetic search composes with Ruby-S: at an equal evaluation
    # budget it is at least competitive with random sampling.
    assert result.genetic.edp <= result.random.edp * 1.05

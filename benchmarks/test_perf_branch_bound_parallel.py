"""Parallel branch-and-bound benchmark: work-sharing speedup, bit-exact.

The headline criterion for subtree work-sharing: on a real ResNet-50
layer's Eyeriss mapspace, branch-and-bound with 4 workers must find the
*same* best-EDP mapping as the serial walk at >= 1.8x the speed. The
shared incumbent makes cross-process cuts as tight as serial ones, so
the win must come from genuine parallelism — not from pruning more (or
fewer) subtrees.

Exactness is asserted unconditionally; the speedup gate needs >= 4
physical cores and is skipped (with the measurements still recorded)
on smaller machines.

Refreshes BENCH_branch_bound_parallel.json (the perf trajectory record).

Run with: pytest benchmarks/test_perf_branch_bound_parallel.py --benchmark-only -s
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest
from conftest import run_once

from repro.arch import eyeriss_like
from repro.io.serde import save_json
from repro.mapspace.constraints import eyeriss_row_stationary
from repro.mapspace.factory import pfm_mapspace
from repro.model import Evaluator
from repro.search.branch_bound import BranchBoundSearch
from repro.zoo.resnet50 import RESNET50_LAYERS

RESULTS_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_branch_bound_parallel.json"
)

WORKERS = 4
SPEEDUP_FLOOR = 1.8

_RESULTS: dict = {"benchmark": "branch_bound_parallel", "cases": {}}


def _record(case: str, payload: dict) -> None:
    _RESULTS["cases"][case] = payload
    save_json(_RESULTS, RESULTS_PATH)


def _best_of(fn, rounds):
    best_s = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best_s = min(best_s, time.perf_counter() - start)
    return result, best_s


def _conv5_expand_setup():
    arch = eyeriss_like()
    by_name = {layer.name: layer for layer, _ in RESNET50_LAYERS}
    workload = by_name["conv5_expand"].workload()
    constraints = eyeriss_row_stationary()
    return arch, workload, constraints


def test_resnet_layer_parallel_speedup(benchmark):
    """4-worker B&B >= 1.8x over serial on conv5_expand, same optimum."""
    arch, workload, constraints = _conv5_expand_setup()

    def search(workers):
        return BranchBoundSearch(
            pfm_mapspace(arch, workload, constraints=constraints),
            Evaluator(arch, workload),
            objective="edp",
            seed=0,
            workers=workers,
        ).run()

    rounds = 2
    serial, serial_s = _best_of(lambda: search(1), rounds)
    parallel, parallel_s = _best_of(lambda: search(WORKERS), rounds)
    run_once(benchmark, lambda: search(WORKERS))

    pool = parallel.stats["pool"]
    speedup = serial_s / parallel_s
    cores = os.cpu_count() or 1
    print(
        f"\nconv5_expand pfm: serial {serial_s:.2f}s, "
        f"{WORKERS}-worker {parallel_s:.2f}s ({speedup:.1f}x on {cores} "
        f"cores), pool={parallel.stats['pool_mode']} "
        f"units={pool['num_units']} transport={pool['transport']}"
    )
    _record(
        "conv5_expand_pfm_4w",
        {
            "workers": WORKERS,
            "cores": cores,
            "serial_s": serial_s,
            "parallel_s": parallel_s,
            "speedup": speedup,
            "pool_mode": parallel.stats["pool_mode"],
            "partition_depth": pool["partition_depth"],
            "num_units": pool["num_units"],
            "transport": pool["transport"],
            "priced_serial": serial.num_evaluated,
            "priced_parallel": parallel.num_evaluated,
            "best_edp": parallel.best_metric,
        },
    )
    # Exactness is unconditional: work-sharing must never change the
    # answer, whatever the core count or pool mode.
    assert parallel.best_metric == serial.best_metric
    assert parallel.stats["bnb"]["subtrees_pruned"] > 0
    if cores < WORKERS:
        pytest.skip(
            f"speedup gate needs >= {WORKERS} cores (have {cores}); "
            f"parity checked, measurements recorded"
        )
    assert parallel.stats["pool_mode"] in ("fork", "spawn"), (
        "pool degraded to sequential on a multi-core machine"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"parallel branch-and-bound speedup {speedup:.2f}x below the "
        f"{SPEEDUP_FLOOR}x criterion on {cores} cores"
    )

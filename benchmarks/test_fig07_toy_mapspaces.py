"""E1-E4 (Fig. 7): mapspace-quality convergence on toy problems.

Paper claims checked per subplot:

* (a) matmul, 5 PEs (aligned): PFM converges to a good mapping quickly;
  Ruby-S converges to (essentially) the same quality; the unconstrained
  spaces are slower early on.
* (b) matmul, 16 PEs (misaligned): imperfect factorization finds better
  mappings than PFM.
* (c) conv, 8 PEs (aligned, C/M spatial only): PFM delivers high quality;
  Ruby-S approaches it; Ruby/Ruby-T lag at small budgets.
* (d) conv, 15 PEs (misaligned): Ruby-S outperforms PFM while searching
  more easily than Ruby/Ruby-T.
"""

from conftest import run_once

from repro.experiments.fig07 import SCENARIOS, format_fig7, run_fig7_scenario

EVALUATIONS = 3_000
RUNS = 3


def _run(scenario_key: str, scale: int):
    return run_fig7_scenario(
        SCENARIOS[scenario_key](),
        evaluations=EVALUATIONS * scale,
        runs=RUNS,
    )


def test_fig7a_aligned_matmul(benchmark, bench_scale):
    result = run_once(benchmark, lambda: _run("a", bench_scale))
    print("\n" + format_fig7(result))
    # Aligned problem: Ruby-S ends within a few percent of PFM.
    assert result.final_edp("ruby-s") <= result.final_edp("pfm") * 1.05
    # Early on, PFM's small space is at least competitive with full Ruby.
    assert result.edp_after("pfm", 200) <= result.edp_after("ruby", 200) * 1.10


def test_fig7b_misaligned_matmul(benchmark, bench_scale):
    result = run_once(benchmark, lambda: _run("b", bench_scale))
    print("\n" + format_fig7(result))
    # Misaligned problem: the best imperfect mapspace beats PFM.
    best_imperfect = min(
        result.final_edp(kind) for kind in ("ruby", "ruby-s", "ruby-t")
    )
    assert best_imperfect < result.final_edp("pfm")
    assert result.final_edp("ruby-s") <= result.final_edp("pfm") * 1.02


def test_fig7c_aligned_conv(benchmark, bench_scale):
    result = run_once(benchmark, lambda: _run("c", bench_scale))
    print("\n" + format_fig7(result))
    # PFM delivers high quality; Ruby-S approaches within 10%.
    assert result.final_edp("ruby-s") <= result.final_edp("pfm") * 1.10
    # The unconstrained mapspaces are not better here (alignment).
    assert result.final_edp("pfm") <= result.edp_after("ruby", 500)


def test_fig7d_misaligned_conv(benchmark, bench_scale):
    result = run_once(benchmark, lambda: _run("d", bench_scale))
    print("\n" + format_fig7(result))
    # Ruby-S exploits the mismatch and at least matches PFM.
    assert result.final_edp("ruby-s") <= result.final_edp("pfm") * 1.02

"""E10 (Fig. 11): DeepBench on the Eyeriss-like baseline.

Claims checked:

* suite-wide, Ruby-S at least matches PFM (paper: ~10% average EDP
  reduction) — asserted as a geomean EDP ratio below 1.0;
* the best individual win is large (paper: up to 33-45%);
* vision workloads (ImageNet-style factor-7 shapes) see little change —
  Ruby-S "almost always matches" PFM there — while the non-vision domains
  (speech / speaker / face / ocr) supply the wins.
"""

from conftest import run_once

from repro.core.metrics import geometric_mean
from repro.experiments.fig11 import format_fig11, run_fig11


def test_fig11_deepbench(benchmark, bench_scale):
    result = run_once(
        benchmark,
        lambda: run_fig11(
            seeds=(1, 2),
            max_evaluations=2_500 * bench_scale,
            patience=800 * bench_scale,
        ),
    )
    print("\n" + format_fig11(result))

    # Suite-wide: Ruby-S wins on average (paper: ~10%).
    assert result.geomean_edp_ratio < 1.0

    # Largest single-workload improvement is substantial (paper: 33-45%).
    assert result.best_improvement_percent > 20.0

    # Non-vision domains supply bigger wins than vision on average.
    by_domain = result.ratios_by_domain()
    vision_geomean = geometric_mean(by_domain["vision"])
    non_vision = [
        ratio
        for domain, ratios in by_domain.items()
        if domain != "vision"
        for ratio in ratios
    ]
    assert geometric_mean(non_vision) < vision_geomean * 1.05


def test_fig11_latency_objective(benchmark, bench_scale):
    """The paper's latency variant: ~14% cycle reduction suite-wide.

    Runs on a per-domain subset to stay fast; the claim is the geomean
    cycles ratio under a delay objective.
    """
    from repro.experiments.fig11 import run_fig11_latency

    subset = (
        "db_vision_28x28",
        "db_speech_conv2",
        "db_face_conv2",
        "db_speaker_conv2",
        "db_gemm_speaker",
        "db_gemm_ocr",
    )
    result = run_once(
        benchmark,
        lambda: run_fig11_latency(
            seeds=(1, 2),
            max_evaluations=2_500 * bench_scale,
            patience=800 * bench_scale,
            subset=subset,
        ),
    )
    print("\n" + format_fig11(result, chart=False))
    # Ruby-S cuts cycles on average when latency is the objective.
    assert result.geomean_cycles_ratio < 0.95

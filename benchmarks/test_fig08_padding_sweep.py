"""E6 (Fig. 8): Ruby-S vs PFM vs PFM+padding over dimension sizes.

Claims checked (16-PE linear array):

* at the prime D = 127, PFM cannot parallelize (serial, 127 cycles) while
  padding to 128 and Ruby-S both run 8 cycles; padding's single zero
  element costs almost nothing there;
* at D = 113, padding wastes ~12% of computations and loses measurably in
  EDP, while Ruby-S packs 8 cycles with no waste;
* Ruby-S is never worse than either alternative across the sweep.
"""

from conftest import run_once

from repro.experiments.fig08 import format_fig8, run_fig8

SIZES = (96, 100, 108, 113, 116, 120, 127, 128)


def test_fig8_padding_sweep(benchmark, bench_scale):
    result = run_once(
        benchmark,
        lambda: run_fig8(
            sizes=SIZES, max_evaluations=1_500 * bench_scale
        ),
    )
    print("\n" + format_fig8(result))

    index_127 = result.sizes.index(127)
    index_113 = result.sizes.index(113)

    # Prime 127: PFM is serial, the others pack the array into 8 cycles.
    assert result.cycles["pfm"][index_127] == 127
    assert result.cycles["ruby-s"][index_127] == 8
    assert result.cycles["pfm+pad"][index_127] == 8
    # Padding by one element costs < 2% EDP at 127.
    assert result.normalized("pfm+pad", 127) < 1.02

    # D = 113: ~12% of padded MACs are zeros -> visible EDP overhead.
    assert result.cycles["ruby-s"][index_113] == 8
    assert result.normalized("pfm+pad", 113) > 1.08
    assert result.normalized("pfm", 113) > 5.0

    # Ruby-S forms the lower envelope everywhere.
    for i, _ in enumerate(result.sizes):
        ruby = result.edp["ruby-s"][i]
        assert ruby <= result.edp["pfm"][i] * 1.001
        assert ruby <= result.edp["pfm+pad"][i] * 1.001


def test_fig8_sparsity_caveat(benchmark, bench_scale):
    """The paper's caveat: with ideal single-operand zero-gating hardware,
    padding performs comparably to Ruby-S."""
    from repro.arch import toy_linear_architecture
    from repro.core import find_best_mapping
    from repro.energy import estimate_energy_table
    from repro.model.sparsity import gated_evaluation
    from repro.problem import pad_dimension
    from repro.zoo.toy import fig8_workload

    def run():
        arch = toy_linear_architecture(16)
        table = estimate_energy_table(arch)
        rows = {}
        for size in (100, 113, 127):
            workload = fig8_workload(size)
            padded = pad_dimension(workload, "D", 16)

            def best(wl, kind):
                return find_best_mapping(
                    arch, wl, kind=kind, seed=0,
                    max_evaluations=1_500 * bench_scale,
                    patience=400 * bench_scale,
                ).best

            ruby = best(workload, "ruby-s")
            gated = gated_evaluation(
                arch, best(padded.workload, "pfm"),
                padded.effectual_fraction, table,
            )
            rows[size] = gated.edp / ruby.edp
        return rows

    rows = run_once(benchmark, run)
    print("\nFig. 8 caveat: gated-padding EDP / Ruby-S EDP:", rows)
    for size, ratio in rows.items():
        assert 0.95 <= ratio <= 1.05, (size, ratio)

"""Branch-and-bound mapper benchmark: prune-driven speedup, bit-exact.

The headline criterion for the hierarchical branch-and-bound searcher:
on a real ResNet-50 layer's Eyeriss mapspace it must find the *same*
best-EDP mapping as the batched exhaustive sweep at >= 2x the speed, and
the win must come from genuine subtree pruning (nonzero counters), not
from evaluating fewer candidates by accident.

Refreshes BENCH_branch_bound.json (the perf trajectory record).

Run with: pytest benchmarks/test_perf_branch_bound.py --benchmark-only -s
"""

from __future__ import annotations

import time
from pathlib import Path

from conftest import run_once

from repro.arch import eyeriss_like
from repro.io.serde import save_json
from repro.mapspace.constraints import eyeriss_row_stationary
from repro.mapspace.factory import pfm_mapspace
from repro.model import Evaluator
from repro.search.branch_bound import BranchBoundSearch
from repro.search.exhaustive import ExhaustiveSearch
from repro.zoo.resnet50 import RESNET50_LAYERS

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_branch_bound.json"

_RESULTS: dict = {"benchmark": "branch_bound", "cases": {}}


def _record(case: str, payload: dict) -> None:
    _RESULTS["cases"][case] = payload
    save_json(_RESULTS, RESULTS_PATH)


def _best_of(fn, rounds):
    best_s = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best_s = min(best_s, time.perf_counter() - start)
    return result, best_s


def _conv5_expand_setup():
    arch = eyeriss_like()
    by_name = {layer.name: layer for layer, _ in RESNET50_LAYERS}
    workload = by_name["conv5_expand"].workload()
    constraints = eyeriss_row_stationary()
    return arch, workload, constraints


def test_resnet_layer_branch_bound_2x(benchmark):
    """>= 2x over batched exhaustive on conv5_expand, same optimum."""
    arch, workload, constraints = _conv5_expand_setup()

    def exhaustive():
        return ExhaustiveSearch(
            pfm_mapspace(arch, workload, constraints=constraints),
            Evaluator(arch, workload),
            objective="edp",
            limit=1_000_000,
        ).run()

    def branch_bound():
        return BranchBoundSearch(
            pfm_mapspace(arch, workload, constraints=constraints),
            Evaluator(arch, workload),
            objective="edp",
            seed=0,
        ).run()

    rounds = 2
    exact, exact_s = _best_of(exhaustive, rounds)
    pruned, pruned_s = _best_of(branch_bound, rounds)
    run_once(benchmark, branch_bound)

    bnb = pruned.stats["bnb"]
    speedup = exact_s / pruned_s
    print(
        f"\nconv5_expand pfm ({exact.num_evaluated} candidates): "
        f"exhaustive {exact_s:.2f}s, branch-bound {pruned_s:.2f}s "
        f"({speedup:.1f}x), priced {pruned.num_evaluated}, "
        f"subtrees pruned {bnb['subtrees_pruned']}"
    )
    _record(
        "conv5_expand_pfm",
        {
            "candidates": exact.num_evaluated,
            "exhaustive_s": exact_s,
            "branch_bound_s": pruned_s,
            "speedup": speedup,
            "priced": pruned.num_evaluated,
            "subtrees_pruned": bnb["subtrees_pruned"],
            "nodes_expanded": bnb["nodes_expanded"],
            "leaves_deferred": bnb["leaves_deferred"],
            "bound_tightness": bnb["bound_tightness"],
            "best_edp": pruned.best_metric,
        },
    )
    # Exactness first: pruning must never change the answer.
    assert pruned.best_metric == exact.best_metric
    # The win must come from real subtree pruning.
    assert bnb["subtrees_pruned"] > 0
    assert pruned.num_evaluated < exact.num_evaluated
    assert speedup >= 2.0, (
        f"branch-and-bound speedup {speedup:.2f}x below the 2x criterion"
    )


def test_branch_bound_seed_stability(benchmark):
    """Different warm-start seeds land on the identical optimum."""
    arch, workload, constraints = _conv5_expand_setup()

    def search(seed):
        return BranchBoundSearch(
            pfm_mapspace(arch, workload, constraints=constraints),
            Evaluator(arch, workload),
            objective="edp",
            seed=seed,
        ).run()

    first = run_once(benchmark, lambda: search(11))
    second = search(12)
    assert first.best_metric == second.best_metric
    _record(
        "seed_stability",
        {
            "best_edp": first.best_metric,
            "priced_seed11": first.num_evaluated,
            "priced_seed12": second.num_evaluated,
        },
    )

"""Extension workloads beyond the paper: MobileNetV1 and BERT-base.

Not paper artifacts — these probe whether the paper's conclusion
generalizes to workload families it did not evaluate:

* MobileNet's pointwise/depthwise mix should benefit like ResNet's
  pointwise layers do (channel counts misaligned with 14x12);
* BERT-base GEMMs have 3-heavy dims (768 = 2^8 x 3, 12 heads) that tile a
  14-wide axis poorly;
* VGG-16 (checked in the unit tier) is the aligned control group.
"""

from conftest import run_once

from repro.arch import eyeriss_like
from repro.experiments.fig10 import compare_network, format_fig10
from repro.mapspace.constraints import eyeriss_row_stationary
from repro.zoo import bert_representative, mobilenet_representative


def test_extension_mobilenet(benchmark, bench_scale):
    comparison = run_once(
        benchmark,
        lambda: compare_network(
            eyeriss_like(),
            mobilenet_representative(),
            constraints=eyeriss_row_stationary(),
            seeds=(1, 2),
            max_evaluations=2_500 * bench_scale,
            patience=800 * bench_scale,
        ),
    )
    print(
        "\n"
        + format_fig10(
            comparison,
            title="Extension: MobileNetV1 on Eyeriss-like (normalized to PFM)",
        )
    )
    assert comparison.network_edp_ratio < 1.0
    assert comparison.best_layer_edp_ratio < 0.9


def test_extension_bert(benchmark, bench_scale):
    comparison = run_once(
        benchmark,
        lambda: compare_network(
            eyeriss_like(),
            bert_representative(),
            constraints=None,  # GEMMs: no conv dataflow constraint
            seeds=(1, 2),
            max_evaluations=2_500 * bench_scale,
            patience=800 * bench_scale,
        ),
    )
    print(
        "\n"
        + format_fig10(
            comparison,
            title="Extension: BERT-base GEMMs on Eyeriss-like "
            "(normalized to PFM)",
        )
    )
    assert comparison.network_edp_ratio < 1.05
    assert comparison.best_layer_edp_ratio < 1.0

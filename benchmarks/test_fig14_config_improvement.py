"""E12 (Fig. 14): per-configuration EDP improvements across the sweep.

Claims checked on the same 2x7 .. 16x16 sweep as Fig. 13:

* Ruby-S improves EDP on average across configurations (paper: ~24%
  average for ResNet-50, ~20% for the DeepBench Pareto points, with
  maxima of 50-60%);
* the best single configuration improves substantially;
* no configuration regresses badly (Ruby-S contains PFM, so large
  regressions would only reflect search noise).
"""

from conftest import run_once

from repro.experiments.fig13 import format_fig13, run_fig13


def test_fig14a_resnet50_improvements(benchmark, bench_scale):
    result = run_once(
        benchmark,
        lambda: run_fig13(
            suite="resnet50",
            seeds_base=100,
            max_evaluations=2_000 * bench_scale,
            patience=600 * bench_scale,
        ),
    )
    print("\n" + format_fig13(result))
    improvements = result.improvements()
    average = sum(improvements.values()) / len(improvements)
    assert average > 5.0, improvements
    assert max(improvements.values()) > 15.0, improvements
    # Highly divisible shapes (8x8) are PFM's best case; at laptop budgets
    # a Ruby-S search can lose there by tens of percent in a bad draw while
    # the sweep average stays strongly positive. Guard only against gross,
    # systematic regressions.
    assert min(improvements.values()) > -45.0, improvements


def test_fig14b_deepbench_improvements(benchmark, bench_scale):
    result = run_once(
        benchmark,
        lambda: run_fig13(
            suite="deepbench",
            seeds_base=200,
            max_evaluations=2_000 * bench_scale,
            patience=600 * bench_scale,
        ),
    )
    print("\n" + format_fig13(result))
    improvements = result.improvements()
    average = sum(improvements.values()) / len(improvements)
    assert average > 0.0, improvements
    assert max(improvements.values()) > 10.0, improvements

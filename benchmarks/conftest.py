"""Shared configuration for the benchmark harnesses.

Every module in this tree regenerates one table or figure of the paper
(see DESIGN.md's experiment index E1-E12). Each benchmark:

* runs the corresponding ``repro.experiments`` harness once (wrapped in
  ``benchmark.pedantic`` so pytest-benchmark reports its wall time),
* prints the same rows/series the paper reports (visible with ``-s`` or in
  the captured output of a failure), and
* asserts the paper's *qualitative* claims — who wins, by roughly what
  factor, where crossovers fall. Absolute numbers differ (our cost model
  is a Timeloop-style substitute, not the authors' testbed).

Budgets are laptop-scale; set REPRO_BENCH_SCALE=2 (or higher) to multiply
search budgets for tighter, slower runs.
"""

from __future__ import annotations

import os

import pytest


def _scale() -> int:
    try:
        return max(1, int(os.environ.get("REPRO_BENCH_SCALE", "1")))
    except ValueError:
        return 1


@pytest.fixture(scope="session")
def bench_scale() -> int:
    """Multiplier applied to search budgets (env REPRO_BENCH_SCALE)."""
    return _scale()


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)

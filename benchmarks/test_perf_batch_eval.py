"""Throughput benchmark for the vectorized batch evaluation engine.

Acceptance criteria from the batch-engine PR:

* the toy exhaustive sweep must run at >= 5x the scalar evaluator's
  mappings/sec through the batch path, and
* batched random search on a real ResNet-50 layer must be no slower than
  the scalar loop,

with results bit-identical in both cases (asserted here too — a fast
wrong answer is not a speedup). Measured numbers land in
``BENCH_batch_eval.json`` at the repo root so later PRs have a perf
trajectory to compare against. Run via ``make bench-batch``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

pytest.importorskip("numpy")

from conftest import run_once

from repro.arch import eyeriss_like, toy_glb_architecture
from repro.io.serde import save_json
from repro.mapspace.constraints import eyeriss_row_stationary
from repro.mapspace.factory import make_mapspace
from repro.model import Evaluator
from repro.search.exhaustive import ExhaustiveSearch
from repro.search.random_search import RandomSearch
from repro.problem.gemm import vector_workload
from repro.zoo.resnet50 import RESNET50_LAYERS

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_batch_eval.json"

_RESULTS: dict = {"benchmark": "batch_eval", "cases": {}}


def _record(case: str, payload: dict) -> None:
    _RESULTS["cases"][case] = payload
    save_json(_RESULTS, RESULTS_PATH)


def _best_of(fn, rounds):
    best_s = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best_s = min(best_s, time.perf_counter() - start)
    return result, best_s


def test_toy_exhaustive_sweep_5x(benchmark):
    """The headline criterion: >= 5x on the toy exhaustive sweep."""
    arch = toy_glb_architecture(num_pes=6, glb_bytes=1024)
    workload = vector_workload("v100", 100)
    mapspace = make_mapspace(arch, workload, "ruby")

    def sweep(use_batch):
        return ExhaustiveSearch(
            mapspace,
            Evaluator(arch, workload),
            objective="edp",
            use_batch=use_batch,
        ).run()

    rounds = 3
    scalar, scalar_s = _best_of(lambda: sweep(False), rounds)
    batched, batched_s = _best_of(lambda: sweep(True), rounds)
    run_once(benchmark, lambda: sweep(True))
    assert scalar.best_metric == batched.best_metric
    assert scalar.num_evaluated == batched.num_evaluated
    scalar_rate = scalar.num_evaluated / scalar_s
    batched_rate = batched.num_evaluated / batched_s
    speedup = batched_rate / scalar_rate
    print(
        f"\ntoy exhaustive ({scalar.num_evaluated} mappings): "
        f"scalar {scalar_rate:,.0f}/s, batch {batched_rate:,.0f}/s "
        f"-> {speedup:.1f}x "
        f"(pruned {batched.stats['batch']['pruned']})"
    )
    _record(
        "toy_exhaustive_ruby_v100",
        {
            "num_mappings": scalar.num_evaluated,
            "scalar_mappings_per_sec": round(scalar_rate, 1),
            "batch_mappings_per_sec": round(batched_rate, 1),
            "speedup": round(speedup, 2),
            "pruned": batched.stats["batch"]["pruned"],
        },
    )
    assert speedup >= 5.0


def test_resnet_layer_random_search_not_slower(benchmark):
    """Batch >= scalar throughput on a real conv layer's random search."""
    arch = eyeriss_like()
    by_name = {layer.name: layer for layer, _ in RESNET50_LAYERS}
    workload = by_name["conv3_3x3"].workload()
    constraints = eyeriss_row_stationary()

    def search(use_batch):
        return RandomSearch(
            make_mapspace(arch, workload, "ruby-s", constraints),
            Evaluator(arch, workload),
            max_evaluations=400,
            patience=None,
            seed=17,
            use_batch=use_batch,
        ).run()

    rounds = 2
    scalar, scalar_s = _best_of(lambda: search(False), rounds)
    batched, batched_s = _best_of(lambda: search(True), rounds)
    run_once(benchmark, lambda: search(True))
    assert scalar.best_metric == batched.best_metric
    scalar_rate = scalar.num_evaluated / scalar_s
    batched_rate = batched.num_evaluated / batched_s
    speedup = batched_rate / scalar_rate
    print(
        f"\nconv3_3x3 random search ({scalar.num_evaluated} draws): "
        f"scalar {scalar_rate:,.0f}/s, batch {batched_rate:,.0f}/s "
        f"-> {speedup:.1f}x"
    )
    _record(
        "resnet50_conv3_3x3_random_ruby_s",
        {
            "num_mappings": scalar.num_evaluated,
            "scalar_mappings_per_sec": round(scalar_rate, 1),
            "batch_mappings_per_sec": round(batched_rate, 1),
            "speedup": round(speedup, 2),
        },
    )
    assert batched_rate >= scalar_rate


def test_results_file_is_valid_json():
    """The trajectory file the next PR will diff against must parse."""
    if not RESULTS_PATH.exists():
        pytest.skip("benchmarks above did not run")
    data = json.loads(RESULTS_PATH.read_text())
    assert data["benchmark"] == "batch_eval"
    assert data["cases"]

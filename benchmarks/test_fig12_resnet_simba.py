"""E9 (Fig. 12): ResNet-50 on the Simba-like architecture.

Claims checked:

* the 15-PE configuration (four 4-wide vector MACs per PE) sees a net EDP
  improvement from Ruby-S (paper: ~10%), with some layers winning up to
  ~25% and some losing slightly (the paper's layer 1 caveat — Simba's
  deeper spatial structure makes Ruby-S's mapspace harder to search);
* the 9-PE / 3x3-wide configuration improves more (paper: ~45%): channel
  dims divide 9 and 15 poorly, so imperfect spatial factors matter more.
"""

from conftest import run_once

from repro.experiments.fig12 import format_fig12, run_fig12


def test_fig12_resnet50_simba(benchmark, bench_scale):
    result = run_once(
        benchmark,
        lambda: run_fig12(
            representative=True,
            include_9pe=True,
            seeds=(1, 2),
            max_evaluations=2_500 * bench_scale,
            patience=800 * bench_scale,
        ),
    )
    print("\n" + format_fig12(result))

    # 15-PE config: net win for Ruby-S.
    assert result.config15.network_edp_ratio < 1.0

    # At least one layer improves substantially (paper: up to 25%).
    assert result.config15.best_layer_edp_ratio < 0.85

    # 9-PE config: also a net win, at least as large as the 15-PE one
    # (paper: 45% vs 10%).
    assert result.config9 is not None
    assert result.config9.network_edp_ratio < 1.0
    assert (
        result.config9.network_edp_ratio
        <= result.config15.network_edp_ratio * 1.10
    )

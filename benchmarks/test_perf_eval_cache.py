"""Smoke benchmark for the evaluation-cache fast path.

Acceptance criterion from the cache PR: re-evaluating an already-seen
mapping must be at least 10x faster than a cold evaluation (in practice
it is orders of magnitude faster — a dict lookup vs. the full
validity -> access-counts -> energy pipeline), and caching must never
change which mapping a search returns. Run via ``make bench-cache`` so
throughput regressions on the search hot path are visible in CI.
"""

import random
import time

import pytest
from conftest import run_once

from repro.arch import eyeriss_like
from repro.mapspace import ruby_s_mapspace
from repro.mapspace.constraints import eyeriss_row_stationary
from repro.model import EvaluationCache, Evaluator
from repro.zoo.resnet50 import RESNET50_LAYERS


@pytest.fixture(scope="module")
def setting():
    arch = eyeriss_like()
    by_name = {layer.name: layer for layer, _ in RESNET50_LAYERS}
    workload = by_name["conv3_3x3"].workload()
    space = ruby_s_mapspace(arch, workload, eyeriss_row_stationary())
    rng = random.Random(0)
    mappings = [space.sample(rng) for _ in range(64)]
    return arch, workload, mappings


def _time(fn, rounds):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_cached_reevaluation_at_least_10x_faster(benchmark, setting):
    arch, workload, mappings = setting
    cold = Evaluator(arch, workload)
    cache = EvaluationCache()
    warm = Evaluator(arch, workload, cache=cache)
    for mapping in mappings:  # prime the cache
        warm.evaluate(mapping)

    def sweep(evaluator):
        for mapping in mappings:
            evaluator.evaluate(mapping)

    rounds = 5
    cold_s = _time(lambda: sweep(cold), rounds)
    warm_s = _time(lambda: sweep(warm), rounds)
    run_once(benchmark, lambda: sweep(warm))
    speedup = cold_s / warm_s
    print(
        f"\n{len(mappings)} evaluations: cold {cold_s * 1e3:.2f} ms, "
        f"cached {warm_s * 1e3:.3f} ms -> {speedup:.0f}x "
        f"(hit rate {cache.hit_rate:.1%})"
    )
    assert cache.hits >= rounds * len(mappings)
    assert speedup >= 10.0


def test_cache_preserves_search_results(benchmark, setting):
    # Same seed, cache on vs. off: identical best mapping and metric.
    from repro.search.parallel import parallel_random_search

    arch, workload, _ = setting
    kwargs = dict(
        constraints=eyeriss_row_stationary(),
        max_evaluations=300,
        patience=None,
        workers=2,
        seed=17,
    )
    cached = run_once(
        benchmark, lambda: parallel_random_search(arch, workload, **kwargs)
    )
    uncached = parallel_random_search(arch, workload, cache_size=0, **kwargs)
    assert cached.best_metric == uncached.best_metric
    assert cached.best.mapping == uncached.best.mapping
    # Hit *counts* depend on how often a huge mapspace re-draws duplicates;
    # only the counters' presence is part of the contract here.
    assert cached.stats["cache"]["hits"] >= 0

"""Extension: co-design along the buffer axis (GLB-capacity sweep).

Not a paper artifact — Figs. 13/14 sweep the PE array; this sweeps the
other big lever, the global-buffer capacity, on the fixed 14x12 array.
Claims checked:

* Ruby-S's advantage persists across GLB sizes (its wins come from the
  spatial mesh misalignment, which buffer capacity does not change);
* the Ruby-S points dominate the PFM points in (area, EDP) along this
  axis too.
"""

from conftest import run_once

from repro.core import sweep_glb_sizes
from repro.core.report import format_table
from repro.mapspace.constraints import eyeriss_row_stationary
from repro.mapspace.generator import MapspaceKind
from repro.utils.pareto import ParetoPoint, frontier_dominates
from repro.zoo import deepbench_representative

GLB_SIZES = (32 * 1024, 64 * 1024, 128 * 1024, 256 * 1024)


def test_extension_glb_sweep(benchmark, bench_scale):
    result = run_once(
        benchmark,
        lambda: sweep_glb_sizes(
            deepbench_representative(),
            glb_bytes_options=GLB_SIZES,
            constraints=eyeriss_row_stationary(),
            max_evaluations=1_500 * bench_scale,
            patience=500 * bench_scale,
            seed=0,
            restarts=2,
        ),
    )
    improvements = result.improvement_by_shape(
        MapspaceKind.RUBY_S, MapspaceKind.PFM
    )
    rows = [
        [
            point.shape_label,
            point.area_mm2,
            point.edp,
            improvements.get(point.shape_label, 0.0),
        ]
        for point in result.of_kind(MapspaceKind.PFM)
    ]
    print(
        "\n"
        + format_table(
            ["GLB", "area mm^2", "EDP pfm", "ruby-s improvement %"],
            rows,
            title="Extension: GLB-capacity sweep on 14x12 (DeepBench subset)",
        )
    )
    # The advantage holds at every buffer size.
    average = sum(improvements.values()) / len(improvements)
    assert average > 5.0, improvements
    assert min(improvements.values()) > -10.0, improvements
    # And Ruby-S dominates along this axis too (3% search-noise tolerance).
    ruby = [
        ParetoPoint(p.area_mm2, p.edp * 0.97)
        for p in result.of_kind(MapspaceKind.RUBY_S)
    ]
    pfm = [
        ParetoPoint(p.area_mm2, p.edp)
        for p in result.of_kind(MapspaceKind.PFM)
    ]
    assert frontier_dominates(ruby, pfm)

"""E11 (Fig. 13): architectural sweep — Ruby-S forms the Pareto frontier.

PE arrays from 2x7 to 16x16 on ResNet-50 (a) and a DeepBench subselection
(b). Claim checked: every PFM design point is weakly dominated by some
Ruby-S point in (area, EDP) — Ruby-S forms a new Pareto frontier at or
below the PFM frontier.
"""

from conftest import run_once

from repro.experiments.fig13 import format_fig13, run_fig13


def test_fig13a_resnet50_pareto(benchmark, bench_scale):
    result = run_once(
        benchmark,
        lambda: run_fig13(
            suite="resnet50",
            max_evaluations=2_000 * bench_scale,
            patience=600 * bench_scale,
        ),
    )
    print("\n" + format_fig13(result))
    assert result.ruby_s_dominates()
    # The frontier is non-trivial: multiple shapes on it.
    assert len(result.ruby_s_frontier()) >= 2


def test_fig13b_deepbench_pareto(benchmark, bench_scale):
    result = run_once(
        benchmark,
        lambda: run_fig13(
            suite="deepbench",
            max_evaluations=2_000 * bench_scale,
            patience=600 * bench_scale,
        ),
    )
    print("\n" + format_fig13(result))
    assert result.ruby_s_dominates()

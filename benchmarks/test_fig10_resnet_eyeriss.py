"""E8 (Fig. 10): ResNet-50 on the Eyeriss-like baseline.

Claims checked (representative per-stage layer selection, count-weighted
to the full network):

* network-level EDP improves (paper: 14%; driven by a 17% cycle reduction
  at a ~2% energy increase);
* the cycle reduction is the dominant effect;
* the largest per-layer wins come from pointwise/dense layers whose dims
  misalign with the 14x12 array (paper: up to 50%).
"""

import os

from conftest import run_once

from repro.experiments.fig10 import format_fig10, run_fig10


def test_fig10_resnet50_eyeriss(benchmark, bench_scale):
    # REPRO_BENCH_FULL=1 searches all 25 unique ResNet-50 layers instead of
    # the representative per-stage subset (~3x slower).
    full = os.environ.get("REPRO_BENCH_FULL", "0") not in ("", "0")
    comparison = run_once(
        benchmark,
        lambda: run_fig10(
            representative=not full,
            seeds=(1, 2),
            max_evaluations=2_500 * bench_scale,
            patience=800 * bench_scale,
        ),
    )
    print("\n" + format_fig10(comparison))

    # Network EDP improves (paper: -14%; allow any clear win).
    assert comparison.network_edp_ratio < 0.95

    # Cycles drive the improvement (paper: -17%).
    assert comparison.network_cycles_ratio < 0.95

    # Energy moves far less than cycles (paper: +2%).
    assert abs(1.0 - comparison.network_energy_ratio) < 0.25

    # At least one misaligned layer improves by >= 25% EDP
    # (paper: up to 50%).
    assert comparison.best_layer_edp_ratio < 0.75

    # Pointwise layers as a group benefit: their geomean beats 1.0.
    pointwise = [
        layer for layer in comparison.layers if "expand" in layer.name
    ]
    assert pointwise
    from repro.core.metrics import geometric_mean

    assert geometric_mean([l.edp_ratio for l in pointwise]) < 1.0

"""Unit tests for evaluation diffing."""

import pytest

from repro.energy import estimate_energy_table
from repro.mapping import Loop, Mapping
from repro.model import Evaluator
from repro.model.diff import diff_evaluations, format_diff


@pytest.fixture
def pair(toy_arch, vector100):
    evaluator = Evaluator(toy_arch, vector100)
    pfm = evaluator.evaluate(
        Mapping.from_blocks(
            [
                ("DRAM", [Loop("D", 1)], []),
                ("GlobalBuffer", [Loop("D", 20)], [Loop("D", 5, spatial=True)]),
                ("PERegister", [], []),
            ]
        )
    )
    ruby = evaluator.evaluate(
        Mapping.from_blocks(
            [
                ("DRAM", [Loop("D", 1)], []),
                ("GlobalBuffer", [Loop("D", 17)], [Loop("D", 6, 4, spatial=True)]),
                ("PERegister", [], []),
            ]
        )
    )
    return toy_arch, estimate_energy_table(toy_arch), pfm, ruby


class TestDiffEvaluations:
    def test_metric_ratios(self, pair):
        arch, table, pfm, ruby = pair
        diff = diff_evaluations(arch, table, pfm, ruby)
        assert diff.edp_ratio == pytest.approx(17 / 20)
        assert diff.cycles_ratio == pytest.approx(17 / 20)
        assert diff.energy_ratio == pytest.approx(1.0)
        assert diff.utilization_delta > 0

    def test_identical_traffic_has_no_deltas(self, pair):
        # Both schedules move exactly 100 elements per level per tensor.
        arch, table, pfm, ruby = pair
        diff = diff_evaluations(arch, table, pfm, ruby)
        assert diff.deltas == []

    def test_traffic_delta_detected(self, toy_arch):
        from repro.problem import GemmLayer

        workload = GemmLayer("g", m=4, n=3, k=2).workload()
        evaluator = Evaluator(toy_arch, workload)
        good = evaluator.evaluate(
            Mapping.from_blocks(
                [
                    ("DRAM", [Loop("M", 4)], []),
                    ("GlobalBuffer", [Loop("K", 2), Loop("N", 3)], []),
                    ("PERegister", [], []),
                ]
            )
        )
        bad = evaluator.evaluate(
            Mapping.from_blocks(
                [
                    ("DRAM", [Loop("N", 3), Loop("M", 4)], []),
                    ("GlobalBuffer", [Loop("K", 2)], []),
                    ("PERegister", [], []),
                ]
            )
        )
        table = estimate_energy_table(toy_arch)
        diff = diff_evaluations(toy_arch, table, good, bad)
        # The refetching mapping reads A from DRAM 3x as often.
        dram_a = next(
            d for d in diff.deltas
            if d.level_name == "DRAM" and d.tensor_name == "A"
        )
        assert dram_a.reads_before == 8 and dram_a.reads_after == 24
        assert dram_a.energy_delta_pj > 0
        assert diff.dominant_deltas(1)[0].level_name == "DRAM"

    def test_invalid_rejected(self, pair, toy_arch, vector100):
        arch, table, pfm, _ = pair
        bad = Evaluator(toy_arch, vector100).evaluate(
            Mapping.from_blocks(
                [
                    ("DRAM", [Loop("D", 3)], []),
                    ("GlobalBuffer", [], []),
                    ("PERegister", [], []),
                ]
            )
        )
        with pytest.raises(ValueError):
            diff_evaluations(arch, table, pfm, bad)

    def test_format(self, pair):
        arch, table, pfm, ruby = pair
        text = format_diff(diff_evaluations(arch, table, pfm, ruby))
        assert "EDP x0.850" in text
        assert "utilization" in text

"""Property-based tests for the analysis/search feature layer."""

import random

from hypothesis import given, settings, strategies as st

from repro.arch import toy_glb_architecture
from repro.energy import estimate_energy_table
from repro.mapspace.generator import MapSpace, MapspaceKind
from repro.model import Evaluator
from repro.model.diff import diff_evaluations
from repro.model.sparsity import gated_evaluation
from repro.problem import GemmLayer
from repro.search.pareto_search import ParetoSearch, _dominates


def _valid_pair(m, n, k, seed):
    arch = toy_glb_architecture(6, 8192)
    workload = GemmLayer("g", m, n, k).workload()
    evaluator = Evaluator(arch, workload)
    space = MapSpace(arch, workload, MapspaceKind.RUBY_S)
    rng = random.Random(seed)
    found = []
    for _ in range(200):
        evaluation = evaluator.evaluate(space.sample(rng))
        if evaluation.valid:
            found.append(evaluation)
        if len(found) == 2:
            return arch, found[0], found[1]
    return arch, None, None


class TestDiffProperties:
    @given(
        m=st.integers(min_value=1, max_value=10),
        n=st.integers(min_value=1, max_value=10),
        k=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_diff_is_antisymmetric_in_ratios(self, m, n, k, seed):
        arch, a, b = _valid_pair(m, n, k, seed)
        if a is None:
            return
        table = estimate_energy_table(arch)
        forward = diff_evaluations(arch, table, a, b)
        backward = diff_evaluations(arch, table, b, a)
        assert forward.edp_ratio * backward.edp_ratio == 1.0 or (
            abs(forward.edp_ratio * backward.edp_ratio - 1.0) < 1e-9
        )
        # Traffic deltas mirror with opposite sign.
        forward_total = sum(d.energy_delta_pj for d in forward.deltas)
        backward_total = sum(d.energy_delta_pj for d in backward.deltas)
        assert abs(forward_total + backward_total) < 1e-6

    @given(
        m=st.integers(min_value=1, max_value=10),
        n=st.integers(min_value=1, max_value=10),
        k=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_self_diff_is_empty(self, m, n, k, seed):
        arch, a, _ = _valid_pair(m, n, k, seed)
        if a is None:
            return
        table = estimate_energy_table(arch)
        diff = diff_evaluations(arch, table, a, a)
        assert diff.deltas == []
        assert diff.edp_ratio == 1.0


class TestGatingProperties:
    @given(
        fraction=st.floats(min_value=0.05, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_gating_monotone_and_bounded(self, fraction, seed):
        arch, a, _ = _valid_pair(8, 6, 4, seed)
        if a is None:
            return
        table = estimate_energy_table(arch)
        gated = gated_evaluation(arch, a, fraction, table)
        assert 0.0 <= gated.energy_pj <= a.energy_pj + 1e-9
        assert gated.cycles == a.cycles
        # More density -> more energy.
        denser = gated_evaluation(arch, a, min(1.0, fraction + 0.1), table)
        assert denser.energy_pj >= gated.energy_pj - 1e-9


class TestParetoProperties:
    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=20, deadline=None)
    def test_frontier_never_dominated_by_any_sample(self, seed):
        arch = toy_glb_architecture(6, 8192)
        workload = GemmLayer("g", 12, 6, 8).workload()
        evaluator = Evaluator(arch, workload)
        space = MapSpace(arch, workload, MapspaceKind.RUBY_S)
        result = ParetoSearch(
            space, evaluator, max_evaluations=200, seed=seed
        ).run()
        # Replay the identical sample stream: nothing dominates the frontier.
        rng = random.Random(seed)
        replayed = [
            evaluator.evaluate(space.sample(rng)) for _ in range(200)
        ]
        for evaluation in replayed:
            if not evaluation.valid:
                continue
            assert not any(
                _dominates(evaluation, kept) for kept in result.frontier
            )

"""Unit tests for the parallel multi-start search."""

import pytest

from repro.arch import toy_glb_architecture
from repro.exceptions import SearchError
from repro.problem.gemm import vector_workload
from repro.search.parallel import parallel_random_search


@pytest.fixture
def setting():
    return toy_glb_architecture(6, 1024), vector_workload("v100", 100)


class TestParallelSearch:
    def test_single_worker_runs(self, setting):
        arch, workload = setting
        result = parallel_random_search(
            arch, workload, workers=1, max_evaluations=300,
            patience=None, seed=0,
        )
        assert result.best is not None and result.best.valid
        assert result.num_evaluated == 300

    def test_multi_worker_aggregates_counts(self, setting):
        arch, workload = setting
        result = parallel_random_search(
            arch, workload, workers=3, max_evaluations=200,
            patience=None, seed=0,
        )
        assert result.best is not None
        assert result.num_evaluated == 600
        assert result.num_valid <= 600

    def test_deterministic_given_seed(self, setting):
        arch, workload = setting
        a = parallel_random_search(
            arch, workload, workers=2, max_evaluations=150,
            patience=None, seed=11,
        )
        b = parallel_random_search(
            arch, workload, workers=2, max_evaluations=150,
            patience=None, seed=11,
        )
        assert a.best_metric == b.best_metric

    def test_more_workers_never_worse(self, setting):
        arch, workload = setting
        one = parallel_random_search(
            arch, workload, workers=1, max_evaluations=150,
            patience=None, seed=3,
        )
        # Same seed stream: the 1-worker stream is the first of the
        # 4-worker streams, so the merged best can only improve.
        four = parallel_random_search(
            arch, workload, workers=4, max_evaluations=150,
            patience=None, seed=3,
        )
        assert four.best_metric <= one.best_metric

    def test_rejects_bad_workers(self, setting):
        arch, workload = setting
        with pytest.raises(SearchError):
            parallel_random_search(arch, workload, workers=0)

    def test_stats_expose_pool_and_workers(self, setting):
        arch, workload = setting
        result = parallel_random_search(
            arch, workload, workers=3, max_evaluations=100,
            patience=None, seed=5,
        )
        stats = result.stats
        assert stats["pool_mode"] in ("fork", "spawn", "sequential")
        assert stats["evals_per_sec"] > 0
        rows = stats["workers"]
        assert len(rows) == 3
        assert sum(row["num_evaluated"] for row in rows) == result.num_evaluated
        assert sum(row["num_valid"] for row in rows) == result.num_valid
        for row in rows:
            assert 0.0 <= row["cache_hit_rate"] <= 1.0
        assert stats["cache"]["hits"] + stats["cache"]["misses"] == 300

    def test_cache_never_changes_results(self, setting):
        arch, workload = setting
        cached = parallel_random_search(
            arch, workload, workers=2, max_evaluations=150,
            patience=None, seed=21,
        )
        uncached = parallel_random_search(
            arch, workload, workers=2, max_evaluations=150,
            patience=None, seed=21, cache_size=0,
        )
        assert cached.best_metric == uncached.best_metric
        assert cached.best.mapping == uncached.best.mapping
        assert cached.num_valid == uncached.num_valid
        assert "cache" not in uncached.stats

    def test_no_valid_reports_none(self, setting):
        # An impossible architecture: nothing valid to find.
        from repro.arch import toy_glb_architecture

        arch = toy_glb_architecture(num_pes=6, glb_bytes=4)
        _, workload = setting
        result = parallel_random_search(
            arch, workload, kind="pfm", workers=2, max_evaluations=50,
            patience=None, seed=0,
        )
        assert result.best is None
        assert result.num_evaluated == 100


class TestStartMethods:
    """The pool must be genuinely parallel under fork AND spawn (the
    paper's 24-thread setup must not silently degrade to one core on
    spawn-only platforms), with identical results in every mode."""

    def _run(self, setting, **kwargs):
        arch, workload = setting
        return parallel_random_search(
            arch, workload, workers=4, max_evaluations=80,
            patience=None, seed=13, **kwargs,
        )

    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_forced_start_method_runs_multiprocess(self, setting, method):
        result = self._run(setting, start_method=method)
        assert result.stats["pool_mode"] == method
        assert result.best is not None
        assert result.num_evaluated == 320

    def test_spawn_parity_with_single_worker_and_fork(self, setting):
        spawn = self._run(setting, start_method="spawn")
        fork = self._run(setting, start_method="fork")
        arch, workload = setting
        one = parallel_random_search(
            arch, workload, workers=1, max_evaluations=80,
            patience=None, seed=13,
        )
        # Same seed stream everywhere: worker 0's stream IS the 1-worker
        # run, so the merged best can only improve on it — and fork vs
        # spawn must agree exactly.
        assert spawn.best_metric == fork.best_metric
        assert spawn.best.mapping == fork.best.mapping
        assert spawn.num_valid == fork.num_valid
        assert spawn.best_metric <= one.best_metric
        assert one.stats["pool_mode"] == "sequential"

    def test_unusable_method_falls_back_to_sequential_all_jobs(
        self, setting, monkeypatch
    ):
        def explode(*args, **kwargs):
            raise ValueError("no process pools here")

        monkeypatch.setattr(
            "multiprocessing.get_context", explode, raising=True
        )
        result = self._run(setting)
        assert result.stats["pool_mode"] == "sequential"
        # The fallback still runs every job, not just the first.
        assert result.num_evaluated == 320
        assert len(result.stats["workers"]) == 4


class TestWorkerErrorContext:
    """A failing worker must report which (index, seed) job died."""

    def _raise_in_search(self, monkeypatch):
        from repro.search.random_search import RandomSearch

        def explode(self, *args, **kwargs):
            raise RuntimeError("synthetic search failure")

        monkeypatch.setattr(RandomSearch, "run", explode)

    @staticmethod
    def _worker_seeds(base_seed, workers):
        from repro.utils.rng import make_rng

        rng = make_rng(base_seed)
        return [rng.getrandbits(32) for _ in range(workers)]

    def test_single_worker_reports_index_and_seed(self, setting, monkeypatch):
        from repro.exceptions import WorkerError

        self._raise_in_search(monkeypatch)
        arch, workload = setting
        with pytest.raises(WorkerError) as info:
            parallel_random_search(
                arch, workload, workers=1, max_evaluations=50,
                patience=None, seed=7,
            )
        assert info.value.index == 0
        assert info.value.seed == self._worker_seeds(7, 1)[0]
        assert "synthetic search failure" in str(info.value)
        payload = info.value.payload()
        assert payload["index"] == 0 and payload["seed"] == info.value.seed

    def test_sequential_fallback_reports_failing_job(
        self, setting, monkeypatch
    ):
        from repro.exceptions import WorkerError

        def explode(*args, **kwargs):
            raise ValueError("no process pools here")

        monkeypatch.setattr(
            "multiprocessing.get_context", explode, raising=True
        )
        self._raise_in_search(monkeypatch)
        arch, workload = setting
        with pytest.raises(WorkerError) as info:
            parallel_random_search(
                arch, workload, workers=3, max_evaluations=50,
                patience=None, seed=5,
            )
        assert info.value.index == 0  # jobs run in order; first one dies
        assert info.value.seed == self._worker_seeds(5, 3)[0]

    @pytest.mark.skipif(
        not hasattr(__import__("os"), "fork"), reason="needs fork"
    )
    def test_fork_pool_surfaces_worker_error(self, setting, monkeypatch):
        """Monkeypatches propagate into fork children, so the raised
        WorkerError crosses the pool boundary with its context intact."""
        from repro.exceptions import WorkerError

        self._raise_in_search(monkeypatch)
        arch, workload = setting
        with pytest.raises(WorkerError) as info:
            parallel_random_search(
                arch, workload, workers=2, max_evaluations=50,
                patience=None, seed=9, start_method="fork",
            )
        seeds = self._worker_seeds(9, 2)
        assert info.value.index in (0, 1)
        assert info.value.seed == seeds[info.value.index]

"""Unit tests for the parallel multi-start search."""

import pytest

from repro.arch import toy_glb_architecture
from repro.exceptions import SearchError
from repro.problem.gemm import vector_workload
from repro.search.parallel import parallel_random_search


@pytest.fixture
def setting():
    return toy_glb_architecture(6, 1024), vector_workload("v100", 100)


class TestParallelSearch:
    def test_single_worker_runs(self, setting):
        arch, workload = setting
        result = parallel_random_search(
            arch, workload, workers=1, max_evaluations=300,
            patience=None, seed=0,
        )
        assert result.best is not None and result.best.valid
        assert result.num_evaluated == 300

    def test_multi_worker_aggregates_counts(self, setting):
        arch, workload = setting
        result = parallel_random_search(
            arch, workload, workers=3, max_evaluations=200,
            patience=None, seed=0,
        )
        assert result.best is not None
        assert result.num_evaluated == 600
        assert result.num_valid <= 600

    def test_deterministic_given_seed(self, setting):
        arch, workload = setting
        a = parallel_random_search(
            arch, workload, workers=2, max_evaluations=150,
            patience=None, seed=11,
        )
        b = parallel_random_search(
            arch, workload, workers=2, max_evaluations=150,
            patience=None, seed=11,
        )
        assert a.best_metric == b.best_metric

    def test_more_workers_never_worse(self, setting):
        arch, workload = setting
        one = parallel_random_search(
            arch, workload, workers=1, max_evaluations=150,
            patience=None, seed=3,
        )
        # Same seed stream: the 1-worker stream is the first of the
        # 4-worker streams, so the merged best can only improve.
        four = parallel_random_search(
            arch, workload, workers=4, max_evaluations=150,
            patience=None, seed=3,
        )
        assert four.best_metric <= one.best_metric

    def test_rejects_bad_workers(self, setting):
        arch, workload = setting
        with pytest.raises(SearchError):
            parallel_random_search(arch, workload, workers=0)

    def test_no_valid_reports_none(self, setting):
        # An impossible architecture: nothing valid to find.
        from repro.arch import toy_glb_architecture

        arch = toy_glb_architecture(num_pes=6, glb_bytes=4)
        _, workload = setting
        result = parallel_random_search(
            arch, workload, kind="pfm", workers=2, max_evaluations=50,
            patience=None, seed=0,
        )
        assert result.best is None
        assert result.num_evaluated == 100

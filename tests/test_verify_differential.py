"""Tests for the differential runner: path agreement, shrinking, replay.

Also drives ``repro.model.diff`` through differentially-verified
evaluations and pins the reference-sim multicast / spatial-reduction
corner cases with remainders on spatial levels.
"""

import math
import random

import pytest
from hypothesis import given, settings

import repro.model.evaluator as evaluator_module
from repro.arch import toy_glb_architecture
from repro.energy.accelergy import estimate_energy_table
from repro.exceptions import VerificationError
from repro.mapping import Loop, Mapping
from repro.mapspace.generator import MapSpace, MapspaceKind
from repro.model.access_counts import AccessCounts, compute_access_counts
from repro.model.diff import diff_evaluations
from repro.model.evaluator import Evaluator
from repro.model.reference_sim import simulate
from repro.problem import GemmLayer
from repro.verify.differential import (
    DifferentialConfig,
    compare_case,
    replay_counterexample,
    run_differential,
    shrink_case,
    ulp_distance,
)
from repro.verify.strategies import (
    VerifyCase,
    adversarial_cases,
    random_case,
    verify_cases,
)


class TestUlpDistance:
    def test_identity(self):
        assert ulp_distance(1.5, 1.5) == 0
        assert ulp_distance(0.0, 0.0) == 0

    def test_adjacent_doubles(self):
        x = 1.0
        assert ulp_distance(x, math.nextafter(x, 2.0)) == 1
        assert ulp_distance(x, math.nextafter(x, 0.0)) == 1

    def test_non_finite(self):
        assert ulp_distance(1.0, float("nan")) == float("inf")
        assert ulp_distance(1.0, float("inf")) == float("inf")

    def test_sign_straddle(self):
        assert ulp_distance(-1.0, 1.0) > 2**52


class TestCompareCase:
    @pytest.mark.parametrize(
        "name",
        [
            "adv:prime-spatial",
            "adv:r1-temporal",
            "adv:perfect-collapse",
            "adv:imperfect-spatial-gemm",
            "adv:bypass-combo",
            "adv:conv-sliding-window",
        ],
    )
    def test_adversarial_cases_agree(self, name):
        by_name = {c.name: c for c in adversarial_cases(random.Random(0))}
        report = compare_case(by_name[name])
        assert report.ok, [d.describe() for d in report.divergences]
        assert report.ref_sim_checked
        assert "batch-single" in report.paths_checked

    def test_decoys_do_not_perturb(self):
        case = adversarial_cases(random.Random(0))[0]
        rng = random.Random(1)
        decoys = MapSpace(
            case.arch, case.workload, MapspaceKind.RUBY
        ).sample_many(5, rng)
        report = compare_case(case, decoys)
        assert report.ok, [d.describe() for d in report.divergences]
        assert "batch-packed" in report.paths_checked

    @given(case=verify_cases())
    @settings(max_examples=25, deadline=None)
    def test_generated_cases_agree(self, case):
        report = compare_case(case, max_sim_points=5_000)
        assert report.ok, [d.describe() for d in report.divergences]


class TestInjectedFault:
    @pytest.fixture
    def off_by_one(self, monkeypatch):
        real = evaluator_module.compute_access_counts

        def corrupted(arch, workload, mapping):
            counts = real(arch, workload, mapping)
            reads = dict(counts.reads)
            if reads:
                key = sorted(reads)[0]
                reads[key] += 1
            return AccessCounts(reads=reads, writes=dict(counts.writes))

        monkeypatch.setattr(
            evaluator_module, "compute_access_counts", corrupted
        )

    def test_caught_shrunk_and_replayable(self, off_by_one, tmp_path):
        report = run_differential(
            DifferentialConfig(
                cases=30,
                seed=0,
                min_ref_sim=5,
                dump_dir=str(tmp_path),
                max_divergent_cases=1,
            )
        )
        assert not report.ok
        assert report.counterexample_paths
        replayed = replay_counterexample(report.counterexample_paths[0])
        assert not replayed.ok  # fault still injected via the fixture

    def test_shrinker_preserves_divergence(self, off_by_one):
        case = adversarial_cases(random.Random(0))[0]
        shrunk, report = shrink_case(case, budget=60)
        assert not report.ok
        original_size = sum(
            1 for p in case.mapping.placed_loops() if p.loop.bound > 1
        )
        shrunk_size = sum(
            1 for p in shrunk.mapping.placed_loops() if p.loop.bound > 1
        )
        assert shrunk_size <= original_size

    def test_cli_flags_divergence(self, off_by_one, tmp_path):
        from repro.cli import main

        code = main(
            [
                "verify",
                "--quick",
                "--cases",
                "20",
                "--no-parallel",
                "--dump-dir",
                str(tmp_path),
            ]
        )
        assert code == VerificationError.exit_code == 9

    def test_replay_clean_after_fix(self, tmp_path):
        # Dump a counterexample under the fault, then replay without it.
        real = evaluator_module.compute_access_counts

        def corrupted(arch, workload, mapping):
            counts = real(arch, workload, mapping)
            reads = dict(counts.reads)
            if reads:
                key = sorted(reads)[0]
                reads[key] += 1
            return AccessCounts(reads=reads, writes=dict(counts.writes))

        evaluator_module.compute_access_counts = corrupted
        try:
            report = run_differential(
                DifferentialConfig(
                    cases=20,
                    seed=0,
                    min_ref_sim=0,
                    dump_dir=str(tmp_path),
                    max_divergent_cases=1,
                )
            )
        finally:
            evaluator_module.compute_access_counts = real
        assert report.counterexample_paths
        assert replay_counterexample(report.counterexample_paths[0]).ok


class TestEvaluationDiffConsistency:
    """repro.model.diff driven through differentially-verified evaluations."""

    def _two_verified_evaluations(self):
        arch = toy_glb_architecture(6, 4096)
        workload = GemmLayer("g", m=6, n=5, k=4).workload()
        table = estimate_energy_table(arch)
        evaluator = Evaluator(arch, workload, table)
        space = MapSpace(arch, workload, MapspaceKind.RUBY_S)
        rng = random.Random(11)
        picked = []
        while len(picked) < 2:
            mapping = space.sample(rng)
            evaluation = evaluator.evaluate(mapping)
            if not evaluation.valid:
                continue
            case = VerifyCase(
                name=f"diff-{len(picked)}",
                arch=arch,
                workload=workload,
                mapping=mapping,
                kind=MapspaceKind.RUBY_S,
            )
            assert compare_case(case).ok
            if picked and picked[0].mapping.signature() == mapping.signature():
                continue
            picked.append(evaluation)
        return arch, table, picked[0], picked[1]

    def test_ratios_match_the_evaluations(self):
        arch, table, baseline, challenger = self._two_verified_evaluations()
        diff = diff_evaluations(arch, table, baseline, challenger)
        assert diff.edp_ratio == pytest.approx(
            challenger.edp / baseline.edp
        )
        assert diff.energy_ratio == pytest.approx(
            challenger.energy_pj / baseline.energy_pj
        )
        assert diff.cycles_ratio == pytest.approx(
            challenger.cycles / baseline.cycles
        )
        assert diff.utilization_delta == pytest.approx(
            challenger.utilization - baseline.utilization
        )

    def test_traffic_deltas_match_access_counts(self):
        arch, table, baseline, challenger = self._two_verified_evaluations()
        diff = diff_evaluations(arch, table, baseline, challenger)
        level_index = {level.name: i for i, level in enumerate(arch.levels)}
        for delta in diff.deltas:
            key = (level_index[delta.level_name], delta.tensor_name)
            assert delta.reads_before == baseline.access_counts.reads.get(key, 0)
            assert delta.reads_after == challenger.access_counts.reads.get(key, 0)
            assert delta.writes_before == baseline.access_counts.writes.get(key, 0)
            assert delta.writes_after == challenger.access_counts.writes.get(key, 0)
            expected = (
                delta.reads_after - delta.reads_before
            ) * table.read_pj(delta.level_name) + (
                delta.writes_after - delta.writes_before
            ) * table.write_pj(delta.level_name)
            assert delta.energy_delta_pj == pytest.approx(expected)
        # dominant_deltas is a permutation prefix of deltas by |energy|.
        dominant = diff.dominant_deltas(top=3)
        magnitudes = sorted(
            (abs(d.energy_delta_pj) for d in diff.deltas), reverse=True
        )
        assert [abs(d.energy_delta_pj) for d in dominant] == magnitudes[:3]


class TestReferenceSimSpatialRemainderCorners:
    """Multicast and spatial-reduction geometry with spatial remainders."""

    def _case(self, mapping, m=7, n=3, k=2):
        arch = toy_glb_architecture(6, 4096)
        workload = GemmLayer("g", m=m, n=n, k=k).workload()
        return VerifyCase(
            name="corner", arch=arch, workload=workload, mapping=mapping
        )

    def test_multicast_with_spatial_remainder(self):
        # B (n, k) is irrelevant to the imperfect spatial M loop: every
        # delivery below the fanout is a multicast, and the remainder pass
        # must not change B's exact counts.
        case = self._case(
            Mapping.from_blocks(
                [
                    ("DRAM", [], []),
                    (
                        "GlobalBuffer",
                        [Loop("K", 2), Loop("M", 2)],
                        [Loop("M", 4, 3, spatial=True)],
                    ),
                    ("PERegister", [Loop("N", 3)], []),
                ]
            )
        )
        report = compare_case(case)
        assert report.ref_sim_checked
        assert report.ok, [d.describe() for d in report.divergences]
        sim = simulate(case.arch, case.workload, case.mapping)
        counts = compute_access_counts(case.arch, case.workload, case.mapping)
        # Multicast tensor B: exact equality even in the corner.
        for level in range(3):
            key = (level, "B")
            assert counts.reads.get(key, 0) == sim.reads.get(key, 0)

    def test_spatial_reduction_with_remainder_is_conservative(self):
        # Outputs under an imperfect spatial M with K churn above: the
        # idle-instance corner. The analytical model may overcount output
        # traffic but never undercount, within the documented slack.
        case = self._case(
            Mapping.from_blocks(
                [
                    ("DRAM", [Loop("K", 2)], []),
                    (
                        "GlobalBuffer",
                        [Loop("M", 2)],
                        [Loop("M", 4, 3, spatial=True)],
                    ),
                    ("PERegister", [Loop("N", 3)], []),
                ]
            )
        )
        report = compare_case(case)
        assert report.ref_sim_checked
        assert report.ok, [d.describe() for d in report.divergences]
        sim = simulate(case.arch, case.workload, case.mapping)
        counts = compute_access_counts(case.arch, case.workload, case.mapping)
        for level in range(3):
            key = (level, "C")
            assert counts.reads.get(key, 0) >= sim.reads.get(key, 0)
            assert counts.writes.get(key, 0) >= sim.writes.get(key, 0)

    def test_temporal_remainder_under_counting_loop_is_conservative(self):
        # The second conservative corner: a temporal remainder pass that
        # collapses to a single tile under irrelevant K churn.
        case = self._case(
            Mapping.from_blocks(
                [
                    ("DRAM", [Loop("M", 3)], []),
                    ("GlobalBuffer", [Loop("K", 2), Loop("M", 2, 1)], []),
                    ("PERegister", [Loop("N", 3)], []),
                ]
            ),
            m=5,
        )
        report = compare_case(case)
        assert report.ref_sim_checked
        assert report.ok, [d.describe() for d in report.divergences]
        sim = simulate(case.arch, case.workload, case.mapping)
        counts = compute_access_counts(case.arch, case.workload, case.mapping)
        key = (1, "C")
        assert counts.reads[key] > sim.reads[key]  # genuinely in the corner
        assert counts.reads[key] <= max(
            sim.reads[key] * 3.0, sim.reads[key] + 12
        )


class TestRunDifferential:
    def test_small_clean_sweep(self):
        report = run_differential(
            DifferentialConfig(cases=40, seed=1, min_ref_sim=10, decoys=3)
        )
        assert report.ok, report.summary()
        assert report.cases_checked >= 40
        assert report.ref_sim_checks >= 10
        for path in ("scalar", "cache", "batch-single", "batch-packed"):
            assert report.path_counts.get(path, 0) > 0
        assert "divergent=0" in report.summary()

    def test_seed_determinism(self):
        config = DifferentialConfig(cases=25, seed=5, min_ref_sim=0)
        a = run_differential(config)
        b = run_differential(config)
        assert a.cases_checked == b.cases_checked
        assert a.path_counts == b.path_counts
        assert a.ref_sim_checks == b.ref_sim_checks

    @pytest.mark.deep
    def test_quick_profile_clean(self):
        report = run_differential(
            DifferentialConfig(cases=500, seed=0, min_ref_sim=50)
        )
        assert report.ok, report.summary()
        assert report.ref_sim_checks >= 50

"""Simulator cross-validation on a scaled-down Eyeriss-like design.

Exercises the paths the toy architectures miss: weights bypassing the GLB
(architecture-level `keeps`), mapping-level bypass, operand-private PE
partitions, and a genuine 2-D mesh with per-axis spatial loops.
"""

import random

import pytest

from repro.arch import eyeriss_like
from repro.mapping import Loop, Mapping
from repro.mapspace.generator import MapSpace, MapspaceKind
from repro.problem import ConvLayer
from tests.test_reference_sim import assert_counts_match


@pytest.fixture
def mini_eyeriss():
    # 2x3 mesh keeps the iteration space simulable.
    return eyeriss_like(2, 3)


@pytest.fixture
def mini_conv():
    return ConvLayer("mini", c=4, m=6, p=4, q=4, r=3, s=3).workload()


class TestEyerissCrossValidation:
    def test_hand_built_row_stationary_nest(self, mini_eyeriss, mini_conv):
        mapping = Mapping.from_blocks(
            [
                ("DRAM", [Loop("P", 4)], []),
                (
                    "GlobalBuffer",
                    [Loop("C", 4), Loop("M", 3)],
                    [
                        Loop("Q", 2, spatial=True, axis=0),
                        Loop("R", 3, spatial=True, axis=1),
                    ],
                ),
                ("PEBuffer", [Loop("M", 2), Loop("Q", 2), Loop("S", 3)], []),
            ]
        )
        sim = assert_counts_match(mini_eyeriss, mini_conv, mapping)
        # Weights bypass the GLB entirely: no GLB traffic for them.
        assert (1, "Weights") not in sim.reads
        assert (1, "Weights") not in sim.writes
        assert sim.reads[(0, "Weights")] > 0

    def test_imperfect_spatial_on_mesh(self, mini_eyeriss, mini_conv):
        mapping = Mapping.from_blocks(
            [
                ("DRAM", [Loop("P", 4), Loop("C", 4)], []),
                (
                    "GlobalBuffer",
                    [Loop("M", 3), Loop("Q", 2)],
                    [
                        Loop("Q", 2, spatial=True, axis=0),
                        # 6 = 3*2: M covered as spatial 2 with remainder 2
                        # under a temporal 3.
                        Loop("M", 2, 2, spatial=True, axis=1),
                    ],
                ),
                ("PEBuffer", [Loop("R", 3), Loop("S", 3)], []),
            ]
        )
        assert_counts_match(mini_eyeriss, mini_conv, mapping)

    def test_mapping_level_bypass(self, mini_eyeriss, mini_conv):
        mapping = Mapping.from_blocks(
            [
                ("DRAM", [Loop("P", 4), Loop("C", 4), Loop("M", 3)], []),
                (
                    "GlobalBuffer",
                    [Loop("Q", 2)],
                    [Loop("Q", 2, spatial=True, axis=0),
                     Loop("M", 2, spatial=True, axis=1)],
                ),
                ("PEBuffer", [Loop("R", 3), Loop("S", 3)], []),
            ],
            bypass=[("GlobalBuffer", "Inputs")],
        )
        sim = assert_counts_match(mini_eyeriss, mini_conv, mapping)
        assert (1, "Inputs") not in sim.writes  # inputs skip the GLB too

    @pytest.mark.parametrize("kind", ["pfm", "ruby-s"])
    def test_random_mesh_mappings(self, mini_eyeriss, mini_conv, kind):
        from repro.mapspace.constraints import eyeriss_row_stationary

        space = MapSpace(
            mini_eyeriss, mini_conv, MapspaceKind(kind),
            eyeriss_row_stationary(),
        )
        rng = random.Random(3)
        checked = 0
        while checked < 10:
            mapping = space.sample(rng)
            assert_counts_match(mini_eyeriss, mini_conv, mapping)
            checked += 1


class TestSimbaCrossValidation:
    """Two stacked spatial fanouts (PE array + vector-MAC lanes)."""

    @pytest.fixture
    def mini_simba(self):
        from repro.arch import simba_like

        return simba_like(num_pes=2, vector_macs_per_pe=2, vector_width=2)

    @pytest.fixture
    def mini_gemm(self):
        from repro.problem import GemmLayer

        return GemmLayer("g", m=8, n=3, k=6).workload()

    def test_hand_built_dual_fanout(self, mini_simba, mini_gemm):
        mapping = Mapping.from_blocks(
            [
                ("DRAM", [Loop("N", 3)], []),
                ("GlobalBuffer", [Loop("K", 3)],
                 [Loop("M", 2, spatial=True)]),
                (
                    "PEBuffer",
                    [Loop("M", 2)],
                    [
                        Loop("K", 2, spatial=True, axis=0),
                        Loop("M", 2, spatial=True, axis=1),
                    ],
                ),
            ]
        )
        assert_counts_match(mini_simba, mini_gemm, mapping)

    @pytest.mark.parametrize("kind", ["pfm", "ruby-s"])
    def test_random_dual_fanout_mappings(self, mini_simba, mini_gemm, kind):
        space = MapSpace(mini_simba, mini_gemm, MapspaceKind(kind))
        rng = random.Random(5)
        for _ in range(10):
            mapping = space.sample(rng)
            assert_counts_match(mini_simba, mini_gemm, mapping)

"""Unit tests for the ASCII chart renderers."""

import pytest

from repro.core.plots import ascii_bar_chart, ascii_line_chart, ascii_scatter


class TestLineChart:
    def test_renders_all_series_markers(self):
        chart = ascii_line_chart(
            {"pfm": [10.0, 8.0, 8.0], "ruby-s": [9.0, 5.0, 4.0]},
            width=30, height=8,
        )
        assert "o=pfm" in chart and "x=ruby-s" in chart
        assert "o" in chart and "x" in chart

    def test_axis_labels_show_range(self):
        chart = ascii_line_chart({"a": [1.0, 100.0]}, width=20, height=5)
        assert "1.000e+00" in chart and "1.000e+02" in chart

    def test_handles_inf_prefix(self):
        series = {"a": [float("inf"), float("inf"), 5.0, 3.0]}
        chart = ascii_line_chart(series, width=20, height=5)
        assert "3.000e+00" in chart

    def test_no_finite_data(self):
        chart = ascii_line_chart({"a": [float("inf")]}, title="T")
        assert "(no finite data)" in chart and "T" in chart

    def test_title_included(self):
        chart = ascii_line_chart({"a": [1.0, 2.0]}, title="Fig7")
        assert chart.startswith("Fig7")

    def test_monotone_series_descends_on_grid(self):
        chart = ascii_line_chart(
            {"a": [100.0, 10.0, 1.0]}, width=9, height=9, log_y=True
        )
        rows = [line for line in chart.splitlines() if line.startswith("          |")]
        first_mark = next(i for i, row in enumerate(rows) if "o" in row)
        last_mark = max(i for i, row in enumerate(rows) if "o" in row)
        assert first_mark < last_mark  # high values at top, low at bottom


class TestScatter:
    def test_two_series(self):
        chart = ascii_scatter(
            {"pfm": [(1.0, 10.0), (2.0, 5.0)], "ruby-s": [(1.0, 8.0)]},
            width=20, height=6,
        )
        assert "o=pfm" in chart and "x=ruby-s" in chart

    def test_x_range_reported(self):
        chart = ascii_scatter({"a": [(0.5, 1.0), (2.5, 2.0)]})
        assert "0.5" in chart and "2.5" in chart

    def test_empty(self):
        assert "(no data)" in ascii_scatter({"a": []})


class TestBarChart:
    def test_bars_scale_with_values(self):
        chart = ascii_bar_chart(["a", "b"], [1.0, 0.5], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_reference_marker(self):
        chart = ascii_bar_chart(
            ["a", "b"], [0.5, 1.5], width=20, reference=1.0
        )
        assert "|" in chart or "!" in chart

    def test_values_printed(self):
        chart = ascii_bar_chart(["layer"], [0.786], width=10)
        assert "0.786" in chart

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert "(no data)" in ascii_bar_chart([], [])

"""Unit tests for roofline analysis."""

import pytest

from repro.arch import Architecture, StorageLevel, toy_glb_architecture
from repro.mapping import Loop, Mapping
from repro.model import Evaluator
from repro.model.roofline import RooflinePoint, roofline_point
from repro.problem import GemmLayer


@pytest.fixture
def gemm_setting(toy_arch):
    workload = GemmLayer("g", m=8, n=6, k=4).workload()
    evaluator = Evaluator(toy_arch, workload)
    mapping = Mapping.from_blocks(
        [
            ("DRAM", [Loop("M", 2)], []),
            ("GlobalBuffer", [Loop("K", 4), Loop("N", 6)],
             [Loop("M", 4, spatial=True)]),
            ("PERegister", [], []),
        ]
    )
    return toy_arch, workload, evaluator.evaluate(mapping)


class TestRooflinePoint:
    def test_operational_intensity(self, gemm_setting):
        arch, workload, evaluation = gemm_setting
        point = roofline_point(arch, workload, evaluation)
        counts = evaluation.access_counts
        dram_bytes = (counts.level_reads(0) + counts.level_writes(0)) * 2
        assert point.operational_intensity == pytest.approx(
            workload.total_operations / dram_bytes
        )

    def test_achieved_throughput(self, gemm_setting):
        arch, workload, evaluation = gemm_setting
        point = roofline_point(arch, workload, evaluation)
        assert point.achieved_ops_per_cycle == pytest.approx(
            workload.total_operations / evaluation.cycles
        )
        assert point.peak_ops_per_cycle == 6.0

    def test_no_bandwidth_means_compute_bound(self, gemm_setting):
        arch, workload, evaluation = gemm_setting
        point = roofline_point(arch, workload, evaluation)
        assert point.dram_bytes_per_cycle is None
        assert point.is_compute_bound
        assert point.ridge_intensity is None
        assert point.attainable_ops_per_cycle == point.peak_ops_per_cycle

    def test_roof_fraction_bounded(self, gemm_setting):
        arch, workload, evaluation = gemm_setting
        point = roofline_point(arch, workload, evaluation)
        assert 0.0 < point.roof_fraction <= 1.0

    def test_invalid_evaluation_rejected(self, toy_arch):
        workload = GemmLayer("g", m=8, n=6, k=4).workload()
        evaluator = Evaluator(toy_arch, workload)
        bad = evaluator.evaluate(
            Mapping.from_blocks(
                [
                    ("DRAM", [Loop("M", 3)], []),
                    ("GlobalBuffer", [], []),
                    ("PERegister", [], []),
                ]
            )
        )
        with pytest.raises(ValueError):
            roofline_point(toy_arch, workload, bad)


class TestBandwidthRoof:
    def test_memory_bound_detection(self):
        # Peak 4 ops/cycle; bandwidth 1 word = 2 bytes/cycle; ridge at
        # OI = 2 MACs/byte. A point at OI 1 is memory-bound.
        point = RooflinePoint(
            operational_intensity=1.0,
            achieved_ops_per_cycle=1.5,
            peak_ops_per_cycle=4.0,
            dram_bytes_per_cycle=2.0,
        )
        assert not point.is_compute_bound
        assert point.ridge_intensity == pytest.approx(2.0)
        assert point.attainable_ops_per_cycle == pytest.approx(2.0)
        assert point.roof_fraction == pytest.approx(0.75)

    def test_compute_bound_beyond_ridge(self):
        point = RooflinePoint(
            operational_intensity=10.0,
            achieved_ops_per_cycle=4.0,
            peak_ops_per_cycle=4.0,
            dram_bytes_per_cycle=2.0,
        )
        assert point.is_compute_bound
        assert point.roof_fraction == pytest.approx(1.0)

    def test_better_reuse_raises_intensity(self, toy_arch):
        # A mapping that refetches A for every N sweep moves more DRAM
        # bytes -> lower operational intensity than the reuse-friendly one.
        workload = GemmLayer("g", m=4, n=3, k=2).workload()
        evaluator = Evaluator(toy_arch, workload)
        reuse = evaluator.evaluate(
            Mapping.from_blocks(
                [
                    ("DRAM", [Loop("M", 4)], []),
                    ("GlobalBuffer", [Loop("K", 2), Loop("N", 3)], []),
                    ("PERegister", [], []),
                ]
            )
        )
        refetch = evaluator.evaluate(
            Mapping.from_blocks(
                [
                    ("DRAM", [Loop("N", 3), Loop("M", 4)], []),
                    ("GlobalBuffer", [Loop("K", 2)], []),
                    ("PERegister", [], []),
                ]
            )
        )
        good = roofline_point(toy_arch, workload, reuse)
        bad = roofline_point(toy_arch, workload, refetch)
        assert good.operational_intensity > bad.operational_intensity

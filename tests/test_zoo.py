"""Unit tests for the workload zoo."""

import pytest

from repro.arch import eyeriss_like
from repro.exceptions import SpecError
from repro.mapping import is_valid_mapping
from repro.model import Evaluator
from repro.zoo import (
    ALEXNET_LAYERS,
    DEEPBENCH_CONV,
    DEEPBENCH_GEMM,
    RESNET50_LAYERS,
    alexnet_conv2,
    alexnet_conv2_strip_mined,
    deepbench_representative,
    deepbench_workloads,
    fig7_conv_workload,
    fig7_matmul_workload,
    resnet50_layer_types,
    resnet50_representative,
    resnet50_workloads,
    table1_workload,
)
from repro.zoo.deepbench import deepbench_by_domain


class TestResNet50:
    def test_layer_count_matches_bottleneck_structure(self):
        # conv1 + 4 stages of bottlenecks: 53 conv applications total.
        total_convs = sum(count for _, count in RESNET50_LAYERS)
        assert total_convs == 53

    def test_workloads_include_fc(self):
        names = [w.name for w, _ in resnet50_workloads()]
        assert "fc1000" in names
        assert len(names) == len(RESNET50_LAYERS) + 1

    def test_all_workloads_validate(self):
        for workload, count in resnet50_workloads():
            workload.validate()
            assert count >= 1

    def test_stage_shapes(self):
        by_name = {layer.name: layer for layer, _ in RESNET50_LAYERS}
        assert by_name["conv1_7x7"].stride_h == 2
        assert by_name["conv5_expand"].m == 2048
        assert by_name["conv4_3x3"].p == 14

    def test_layer_types_partition_all_layers(self):
        groups = resnet50_layer_types()
        grouped = [name for names in groups.values() for name in names]
        expected = [layer.name for layer, _ in RESNET50_LAYERS] + ["fc1000"]
        assert sorted(grouped) == sorted(expected)

    def test_pointwise_group_is_largest(self):
        groups = resnet50_layer_types()
        assert len(groups["pointwise"]) > len(groups["conv3x3"])

    def test_representative_subset_smaller(self):
        full = resnet50_workloads()
        rep = resnet50_representative()
        assert 3 < len(rep) < len(full)


class TestAlexNet:
    def test_conv2_shape_matches_paper(self):
        w = alexnet_conv2()
        assert w.size("C") == 48 and w.size("M") == 96
        assert w.size("P") == w.size("Q") == 27
        assert w.size("R") == w.size("S") == 5
        # IFM 27x27(+padding): input footprint derives from output + filter.
        assert w.tensor_size("Inputs") == 31 * 31 * 48

    def test_five_conv_layers(self):
        assert len(ALEXNET_LAYERS) == 5


class TestHandcrafted:
    def test_strip_mined_valid_on_eyeriss(self, eyeriss):
        mapping = alexnet_conv2_strip_mined(eyeriss)
        assert is_valid_mapping(mapping, eyeriss, alexnet_conv2())

    def test_strip_mined_utilization_matches_eyeriss_folding(self, eyeriss):
        evaluation = Evaluator(eyeriss, alexnet_conv2()).evaluate(
            alexnet_conv2_strip_mined(eyeriss)
        )
        # 135 of 168 PEs active -> ~80% utilization (paper quotes 85%).
        assert evaluation.utilization == pytest.approx(135 / 168, rel=1e-3)

    def test_strip_mined_needs_eyeriss_mesh(self):
        small = eyeriss_like(4, 7)
        with pytest.raises(SpecError):
            alexnet_conv2_strip_mined(small)

    def test_strip_mining_is_imperfect(self, eyeriss):
        # The Eyeriss fold (Q = 14 with a 13-wide last strip) is an
        # imperfect spatial factor — outside the PFM mapspace by nature.
        mapping = alexnet_conv2_strip_mined(eyeriss)
        assert mapping.has_imperfect_spatial()
        assert not mapping.has_imperfect_temporal()


class TestDeepBench:
    def test_suite_covers_domains(self):
        domains = {domain for _, domain in DEEPBENCH_CONV}
        domains |= {domain for _, domain in DEEPBENCH_GEMM}
        assert domains == {"vision", "speech", "face", "speaker", "ocr"}

    def test_all_workloads_validate(self):
        for workload, _ in deepbench_workloads():
            workload.validate()

    def test_deepspeech_layer2_matches_paper_quote(self):
        by_name = {layer.name: layer for layer, _ in DEEPBENCH_CONV}
        conv2 = by_name["db_speech_conv2"]
        # "DeepSpeech layer 1 IFM is 341x79x32 and a filter is 5x10x32".
        assert conv2.input_height == 341
        assert conv2.c == 32
        assert (conv2.r, conv2.s) == (5, 10)

    def test_by_domain_grouping(self):
        grouped = deepbench_by_domain()
        assert len(grouped["vision"]) == 7

    def test_representative_one_per_domain(self):
        rep = deepbench_representative()
        assert len(rep) == 5


class TestToyWorkloads:
    def test_fig7_matmul(self):
        w = fig7_matmul_workload()
        assert w.dim_sizes == {"M": 100, "N": 100, "K": 100}

    def test_fig7_conv(self):
        w = fig7_conv_workload()
        assert w.size("C") == 64 and w.size("M") == 64
        assert w.size("R") == 3

    def test_table1_workload_sizes(self):
        for size in (3, 100, 4096):
            assert table1_workload(size).total_operations == size

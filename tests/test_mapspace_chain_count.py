"""Unit tests for DP chain counting vs brute-force enumeration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import toy_linear_architecture
from repro.mapspace import DimAllocator, build_slots
from repro.mapspace.chain_count import count_dim_chains, mapspace_upper_bound
from repro.mapspace.generator import MapspaceKind


def enumerated_count(slots, kind, size):
    allocator = DimAllocator(
        slots,
        spatial_imperfect=kind.spatial_imperfect,
        temporal_imperfect=kind.temporal_imperfect,
    )
    return sum(1 for _ in allocator.enumerate_chains("D", size))


class TestCountMatchesEnumeration:
    @pytest.mark.parametrize("kind", list(MapspaceKind))
    @pytest.mark.parametrize("size", [1, 3, 12, 27, 100, 127, 360])
    def test_exact_match(self, kind, size):
        slots = build_slots(toy_linear_architecture(9))
        assert count_dim_chains(slots, kind, "D", size) == enumerated_count(
            slots, kind, size
        )

    @given(
        size=st.integers(min_value=1, max_value=300),
        kind=st.sampled_from(list(MapspaceKind)),
        fanout=st.integers(min_value=2, max_value=16),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_match(self, size, kind, fanout):
        slots = build_slots(toy_linear_architecture(fanout))
        assert count_dim_chains(slots, kind, "D", size) == enumerated_count(
            slots, kind, size
        )


class TestScalesBeyondEnumeration:
    def test_large_dimension_is_fast(self):
        slots = build_slots(toy_linear_architecture(9))
        # Ruby at D = 10^6 has ~10^7 chains; counting is near-instant.
        count = count_dim_chains(slots, MapspaceKind.RUBY, "D", 1_000_000)
        assert count > 1_000_000

    def test_ordering_holds_at_scale(self):
        slots = build_slots(toy_linear_architecture(9))
        size = 100_000
        counts = {
            kind: count_dim_chains(slots, kind, "D", size)
            for kind in MapspaceKind
        }
        assert (
            counts[MapspaceKind.PFM]
            < counts[MapspaceKind.RUBY_S]
            < counts[MapspaceKind.RUBY_T]
            <= counts[MapspaceKind.RUBY]
        )


class TestUpperBound:
    def test_bounds_enumerated_mapspace(self, linear_arch9):
        from repro.mapspace.counting import count_mapspace_size
        from repro.zoo.toy import table1_workload

        workload = table1_workload(100)
        for kind in MapspaceKind:
            bound = mapspace_upper_bound(
                linear_arch9, workload.dim_sizes, kind
            )
            actual = count_mapspace_size(
                linear_arch9, workload, kind, count_valid=False
            ).raw
            assert actual <= bound

    def test_multi_dim_product(self, linear_arch9):
        bound = mapspace_upper_bound(
            linear_arch9, {"A": 6, "B": 10}, MapspaceKind.PFM
        )
        slots = build_slots(linear_arch9)
        a = count_dim_chains(slots, MapspaceKind.PFM, "A", 6)
        b = count_dim_chains(slots, MapspaceKind.PFM, "B", 10)
        assert bound == a * b

"""Scalar <-> batch parity for the vectorized evaluation engine.

The batch engine's contract is *bit-exactness*: every quantity a search
compares (energy_pj, cycles, EDP, utilization, validity) must equal the
scalar :class:`~repro.model.evaluator.Evaluator`'s result with ``==``, not
``pytest.approx`` — otherwise batched searches could diverge from the
figures. These tests sweep presets x mapspace kinds with imperfect
(remainder-carrying) mappings and invalid candidates included, and assert
the searches themselves are trajectory-identical with batching on or off.
"""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

from repro.arch import (
    eyeriss_like,
    simba_like,
    toy_glb_architecture,
    toy_linear_architecture,
)
from repro.exceptions import SearchError
from repro.mapspace.constraints import eyeriss_row_stationary
from repro.mapspace.factory import make_mapspace
from repro.model import BatchEvaluator, Evaluator, pack_mappings
from repro.model.eval_cache import EvaluationCache
from repro.problem import ConvLayer, GemmLayer
from repro.problem.gemm import vector_workload
from repro.search.exhaustive import ExhaustiveSearch
from repro.search.genetic import GeneticSearch
from repro.search.random_search import RandomSearch

KINDS = ("pfm", "ruby", "ruby-s", "ruby-t")


def _presets():
    return [
        (
            "toy",
            toy_glb_architecture(num_pes=6, glb_bytes=1024),
            vector_workload("v100", 100),
        ),
        (
            "linear9",
            toy_linear_architecture(9),
            vector_workload("v500", 500),
        ),
        (
            "eyeriss",
            eyeriss_like(),
            ConvLayer("conv", c=8, m=16, p=6, q=6, r=3, s=3).workload(),
        ),
        (
            "simba",
            simba_like(),
            GemmLayer("gemm", m=12, n=10, k=8).workload(),
        ),
    ]


def _assert_same_result(a, b, *, check_stats_batch=False):
    """Two SearchResults from identical-trajectory searches must agree."""
    assert a.num_evaluated == b.num_evaluated
    assert a.num_valid == b.num_valid
    assert a.terminated_by == b.terminated_by
    assert [(p.evaluations, p.best_metric) for p in a.curve] == [
        (p.evaluations, p.best_metric) for p in b.curve
    ]
    assert (a.best is None) == (b.best is None)
    if a.best is not None:
        assert a.best.metric(a.objective) == b.best.metric(b.objective)
        assert a.best.energy_pj == b.best.energy_pj
        assert a.best.cycles == b.best.cycles
        assert a.best.mapping.signature() == b.best.mapping.signature()
    if check_stats_batch:
        batch = b.stats["batch"]
        assert batch["candidates"] == b.num_evaluated
        assert 0.0 <= batch["prune_rate"] <= 1.0


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize(
    "preset", _presets(), ids=lambda case: case[0]
)
def test_random_sample_parity(preset, kind):
    """Property-style sweep: batch == scalar on random (in)valid samples."""
    _, arch, workload = preset
    mapspace = make_mapspace(arch, workload, kind)
    evaluator = Evaluator(arch, workload)
    engine = BatchEvaluator(evaluator, layout=mapspace.batch_layout())
    assert engine.supported, engine.unsupported_reason
    rng = random.Random(20260805)
    mappings = [mapspace.sample(rng) for _ in range(50)]
    batch = pack_mappings(mapspace.batch_layout(), mappings)
    outcome = engine.evaluate_batch(batch, objective="edp")
    saw_invalid = saw_imperfect = False
    for i, mapping in enumerate(mappings):
        scalar = evaluator.evaluate(mapping)
        assert scalar.valid == bool(outcome.valid[i])
        if not scalar.valid:
            saw_invalid = True
            assert outcome.metric[i] == float("inf")
            continue
        if mapping.has_imperfect_loops():
            saw_imperfect = True
        # Exact equality — the whole point of the columnar engine.
        assert scalar.energy_pj == float(outcome.energy_pj[i])
        assert scalar.cycles == int(outcome.cycles[i])
        assert scalar.utilization == float(outcome.utilization[i])
        assert scalar.edp == float(outcome.metric[i])
    assert saw_invalid or all(
        bool(v) for v in outcome.valid
    ), "sampler produced no invalid mapping and none were flagged"
    if kind != "pfm":
        assert saw_imperfect, "imperfect kinds must exercise remainders"


@pytest.mark.parametrize("kind", KINDS)
def test_enumeration_batch_matches_scalar(kind):
    """iter_batches rows equal enumerate_mappings, one for one."""
    arch = toy_glb_architecture(num_pes=6, glb_bytes=1024)
    workload = vector_workload("v100", 100)
    mapspace = make_mapspace(arch, workload, kind)
    evaluator = Evaluator(arch, workload)
    engine = BatchEvaluator(evaluator, layout=mapspace.batch_layout())
    scalar_mappings = list(mapspace.enumerate_mappings(permutations=False))
    rows = []
    for batch in mapspace.iter_batches(batch_size=32):
        outcome = engine.evaluate_batch(batch, objective="edp")
        for i in range(batch.size):
            rows.append((batch.mapping_at(i), outcome, i))
    assert len(rows) == len(scalar_mappings)
    for mapping, (materialized, outcome, i) in zip(scalar_mappings, rows):
        assert mapping.signature() == materialized.signature()
        scalar = evaluator.evaluate(mapping)
        assert scalar.valid == bool(outcome.valid[i])
        if scalar.valid:
            assert scalar.edp == float(outcome.metric[i])


@pytest.mark.parametrize("kind", KINDS)
def test_pruning_never_discards_the_best(kind):
    """Acceptance gate: pruned and unpruned sweeps return identical results."""
    arch = toy_glb_architecture(num_pes=6, glb_bytes=1024)
    workload = vector_workload("v100", 100)
    mapspace = make_mapspace(arch, workload, kind)

    def sweep(**kwargs):
        return ExhaustiveSearch(
            mapspace, Evaluator(arch, workload), objective="edp", **kwargs
        ).run()

    scalar = sweep(use_batch=False)
    unpruned = sweep(use_batch=True, prune=False, batch_size=64)
    pruned = sweep(use_batch=True, prune=True, batch_size=64)
    _assert_same_result(scalar, unpruned)
    _assert_same_result(scalar, pruned, check_stats_batch=True)


def test_pruning_skips_candidates_somewhere():
    """The lower bound actually fires on a space with bad candidates."""
    arch = toy_glb_architecture(num_pes=6, glb_bytes=1024)
    workload = vector_workload("v100", 100)
    mapspace = make_mapspace(arch, workload, "ruby")
    result = ExhaustiveSearch(
        mapspace, Evaluator(arch, workload), prune=True, batch_size=64
    ).run()
    assert result.stats["batch"]["pruned"] > 0


@pytest.mark.parametrize("kind", ("pfm", "ruby", "ruby-s"))
def test_random_search_batch_parity(kind):
    """Batched RandomSearch is draw-for-draw identical to the scalar loop."""
    arch = eyeriss_like()
    workload = ConvLayer("conv", c=8, m=16, p=6, q=6, r=3, s=3).workload()
    constraints = eyeriss_row_stationary()

    def search(use_batch):
        return RandomSearch(
            make_mapspace(arch, workload, kind, constraints),
            Evaluator(arch, workload),
            max_evaluations=400,
            patience=80,
            seed=11,
            use_batch=use_batch,
            batch_size=64,
        ).run()

    _assert_same_result(
        search(False), search(True), check_stats_batch=True
    )


def test_random_search_patience_termination_matches():
    """A patience stop lands on the same draw with and without batching."""
    arch = toy_glb_architecture(num_pes=6, glb_bytes=1024)
    workload = vector_workload("v100", 100)

    def search(use_batch):
        return RandomSearch(
            make_mapspace(arch, workload, "pfm"),
            Evaluator(arch, workload),
            max_evaluations=5000,
            patience=40,
            seed=3,
            use_batch=use_batch,
            batch_size=256,
        ).run()

    a, b = search(False), search(True)
    assert a.terminated_by == "patience"
    _assert_same_result(a, b)


def test_genetic_batch_parity():
    """Batched population scoring evolves the exact same trajectory."""
    arch = eyeriss_like()
    workload = GemmLayer("gemm", m=12, n=10, k=8).workload()

    def search(use_batch):
        return GeneticSearch(
            make_mapspace(arch, workload, "ruby-s"),
            Evaluator(arch, workload),
            population_size=14,
            generations=5,
            seed=21,
            use_batch=use_batch,
        ).run()

    _assert_same_result(search(False), search(True), check_stats_batch=True)


def test_exhaustive_limit_enforced_on_batch_path():
    """The safety cap raises before a too-large batch is priced."""
    arch = toy_linear_architecture(9)
    workload = vector_workload("v500", 500)
    mapspace = make_mapspace(arch, workload, "ruby")
    with pytest.raises(SearchError, match="exceeded limit"):
        ExhaustiveSearch(
            mapspace, Evaluator(arch, workload), limit=50, use_batch=True
        ).run()


def test_exhaustive_scalar_dedups_on_signature():
    """The scalar sweep's seen-set now keys on Mapping.signature()."""
    arch = toy_glb_architecture(num_pes=6, glb_bytes=1024)
    workload = vector_workload("v100", 100)
    mapspace = make_mapspace(arch, workload, "ruby")
    result = ExhaustiveSearch(
        mapspace, Evaluator(arch, workload), use_batch=False
    ).run()
    signatures = {
        m.signature() for m in mapspace.enumerate_mappings(permutations=False)
    }
    assert result.num_evaluated == len(signatures)


def test_bypass_mappings_fall_back_to_scalar():
    """Rows the grid cannot encode (bypass sets) are priced scalar-exact."""
    arch = eyeriss_like()
    workload = ConvLayer("conv", c=8, m=16, p=6, q=6, r=3, s=3).workload()
    mapspace = make_mapspace(arch, workload, "ruby-s")
    mapspace.explore_bypass = True
    evaluator = Evaluator(arch, workload)
    engine = BatchEvaluator(evaluator, layout=mapspace.batch_layout())
    rng = random.Random(77)
    mappings = [mapspace.sample(rng) for _ in range(40)]
    assert any(m.bypass for m in mappings), "no bypass mapping drawn"
    batch = pack_mappings(mapspace.batch_layout(), mappings)
    outcome = engine.evaluate_batch(batch, objective="edp")
    assert bool(outcome.fallback.any())
    for i, mapping in enumerate(mappings):
        scalar = evaluator.evaluate(mapping)
        assert scalar.valid == bool(outcome.valid[i])
        if scalar.valid:
            assert scalar.edp == float(outcome.metric[i])
            assert scalar.energy_pj == float(outcome.energy_pj[i])


def test_unsupported_evaluator_runs_scalar_path():
    """NoC/static components disable the engine; searches stay correct."""
    arch = toy_glb_architecture(num_pes=6, glb_bytes=1024)
    workload = vector_workload("v100", 100)
    evaluator = Evaluator(arch, workload, include_noc=True)
    engine = BatchEvaluator(evaluator)
    assert not engine.supported

    def search(use_batch):
        return RandomSearch(
            make_mapspace(arch, workload, "ruby-s"),
            Evaluator(arch, workload, include_noc=True),
            max_evaluations=120,
            patience=None,
            seed=5,
            use_batch=use_batch,
        ).run()

    a, b = search(False), search(True)
    _assert_same_result(a, b)
    # Engine never engaged: the uniform schema still carries the batch
    # sub-dict, with every counter at zero.
    assert b.stats["batch"]["candidates"] == 0
    assert b.stats["batch"]["batches"] == 0


def test_cache_lookup_counts_preserved_on_batch_path():
    """One cache lookup per draw — the PR-1 accounting contract holds."""
    arch = toy_glb_architecture(num_pes=6, glb_bytes=1024)
    workload = vector_workload("v100", 100)
    cache = EvaluationCache(1024)
    evaluator = Evaluator(arch, workload, cache=cache)
    result = RandomSearch(
        make_mapspace(arch, workload, "ruby-s"),
        evaluator,
        max_evaluations=200,
        patience=None,
        seed=9,
        use_batch=True,
        batch_size=64,
    ).run()
    assert cache.hits + cache.misses == result.num_evaluated == 200


def test_cached_and_uncached_batched_searches_agree():
    """The cache changes hit counts, never results, on the batch path."""
    arch = toy_glb_architecture(num_pes=6, glb_bytes=1024)
    workload = vector_workload("v100", 100)

    def search(cache):
        return RandomSearch(
            make_mapspace(arch, workload, "ruby-s"),
            Evaluator(arch, workload, cache=cache),
            max_evaluations=300,
            patience=None,
            seed=123,
            use_batch=True,
            batch_size=64,
        ).run()

    _assert_same_result(search(None), search(EvaluationCache(1024)))


def test_objective_energy_and_delay_parity():
    """Non-EDP objectives route through the same exact kernels."""
    arch = simba_like()
    workload = GemmLayer("gemm", m=12, n=10, k=8).workload()
    for objective in ("energy", "delay"):
        def search(use_batch):
            return RandomSearch(
                make_mapspace(arch, workload, "ruby-s"),
                Evaluator(arch, workload),
                objective=objective,
                max_evaluations=200,
                patience=60,
                seed=31,
                use_batch=use_batch,
                batch_size=64,
            ).run()

        _assert_same_result(search(False), search(True))

"""Parallel branch-and-bound: exactness, stats, and observability merge.

The contract under test: ``workers > 1`` is a pure performance knob.
Subtree work-sharing over a cross-process shared incumbent must return
the bit-identical best metric as the serial walk (the driver re-prices
every worker claim, so incumbent race timing cannot leak into the
answer), expose the same stats schema plus a ``pool`` payload, and merge
per-worker observability counters into the driver's registry exactly
like the parallel random search does.
"""

from __future__ import annotations

import pytest

from repro.arch import eyeriss_like, toy_glb_architecture
from repro.exceptions import SearchError
from repro.mapspace import MapspaceKind
from repro.mapspace.factory import make_mapspace
from repro.model import Evaluator
from repro.obs import MetricsRegistry, obs_scope
from repro.problem import GemmLayer
from repro.search import BranchBoundSearch
from repro.search.exhaustive import ExhaustiveSearch


def _toy_fixture(kind=MapspaceKind.PFM):
    arch = toy_glb_architecture(num_pes=6, glb_bytes=1024)
    workload = GemmLayer("g6x4x2", m=6, n=4, k=2).workload()
    space = make_mapspace(arch, workload, kind)
    return space, Evaluator(arch, workload)


def _eyeriss_fixture():
    arch = eyeriss_like()
    workload = GemmLayer("g8x4x4", m=8, n=4, k=4).workload()
    space = make_mapspace(arch, workload, MapspaceKind.PFM)
    return space, Evaluator(arch, workload)


class TestParallelParity:
    """workers > 1 never changes the answer."""

    @pytest.mark.parametrize("kind", [MapspaceKind.PFM, MapspaceKind.RUBY_S])
    def test_toy_matches_serial_and_exhaustive(self, kind):
        space, evaluator = _toy_fixture(kind)
        exhaustive = ExhaustiveSearch(space, evaluator, limit=200_000).run()
        serial = BranchBoundSearch(space, evaluator, seed=0).run()
        parallel = BranchBoundSearch(
            space, evaluator, seed=0, workers=2
        ).run()
        assert serial.best_metric == exhaustive.best_metric
        assert parallel.best_metric == serial.best_metric

    def test_eyeriss_matches_serial(self):
        space, evaluator = _eyeriss_fixture()
        serial = BranchBoundSearch(space, evaluator, seed=0).run()
        parallel = BranchBoundSearch(
            space, evaluator, seed=0, workers=2
        ).run()
        assert parallel.best_metric == serial.best_metric
        assert parallel.terminated_by == "exhausted"

    def test_walk_mode_matches_serial(self):
        # A tiny leaf width forces worker-side subtree walks (with the
        # factor tables shipped through shared memory) instead of
        # driver-enumerated price batches.
        space, evaluator = _eyeriss_fixture()
        serial = BranchBoundSearch(
            space, evaluator, seed=0, leaf_width=4, batch_size=16
        ).run()
        parallel = BranchBoundSearch(
            space, evaluator, seed=0, workers=2, leaf_width=4, batch_size=16
        ).run()
        assert parallel.best_metric == serial.best_metric
        kinds = {
            row["kind"] for row in parallel.stats["pool"]["units"]
        }
        assert kinds == {"walk"}
        bnb = parallel.stats["bnb"]
        # Deep walks must both expand interior nodes and defer leaves —
        # the two counters are distinct stats and both must register.
        assert bnb["nodes_expanded"] > 0
        assert bnb["leaves_deferred"] > 0

    def test_seed_determinism_across_runs(self):
        space, evaluator = _eyeriss_fixture()
        a = BranchBoundSearch(space, evaluator, seed=3, workers=2).run()
        b = BranchBoundSearch(space, evaluator, seed=3, workers=2).run()
        assert a.best_metric == b.best_metric
        assert a.stats["bnb"] == b.stats["bnb"]


class TestParallelStats:
    def test_pool_payload_schema(self):
        space, evaluator = _eyeriss_fixture()
        result = BranchBoundSearch(space, evaluator, seed=0, workers=2).run()
        assert result.stats["pool_mode"] in ("fork", "spawn", "sequential")
        pool = result.stats["pool"]
        assert pool["workers"] == 2
        assert pool["partition_depth"] >= 1
        assert pool["num_units"] == len(pool["units"])
        assert pool["transport"] in ("shm", "pickle", None)
        for row in pool["units"]:
            assert row["kind"] in ("walk", "price")
            assert row["evaluations"] >= 0
            assert row["elapsed_s"] >= 0.0

    def test_stats_schema_matches_serial(self):
        space, evaluator = _eyeriss_fixture()
        serial = BranchBoundSearch(space, evaluator, seed=0).run()
        parallel = BranchBoundSearch(
            space, evaluator, seed=0, workers=2
        ).run()
        assert set(parallel.stats["bnb"]) == set(serial.stats["bnb"])
        assert set(parallel.stats["batch"]) == set(serial.stats["batch"])
        # Parallel runs additionally expose the pool breakdown.
        assert "pool" in parallel.stats and "pool" not in serial.stats

    def test_sequential_fallback_when_pool_unusable(self, monkeypatch):
        def explode(*args, **kwargs):
            raise ValueError("no process pools here")

        monkeypatch.setattr(
            "multiprocessing.get_context", explode, raising=True
        )
        space, evaluator = _eyeriss_fixture()
        serial = BranchBoundSearch(space, evaluator, seed=0).run()
        result = BranchBoundSearch(
            space, evaluator, seed=0, workers=2
        ).run()
        assert result.stats["pool_mode"] == "sequential"
        assert result.best_metric == serial.best_metric

    def test_rejects_bad_workers(self):
        space, evaluator = _toy_fixture()
        with pytest.raises(SearchError):
            BranchBoundSearch(space, evaluator, workers=0)


class TestObsMerge:
    """Per-worker registries must sum into the driver scope."""

    def test_subtrees_pruned_counter_merges(self):
        space, evaluator = _eyeriss_fixture()
        registry = MetricsRegistry()
        with obs_scope(registry=registry):
            result = BranchBoundSearch(
                space, evaluator, seed=0, workers=2, leaf_width=4,
                batch_size=16,
            ).run()
        bnb = result.stats["bnb"]
        assert bnb["subtrees_pruned"] > 0
        # The registry total spans driver-side partition pruning plus
        # every worker's walk — it must equal the merged stats counter.
        merged = registry.counter("search.subtrees_pruned").value(
            driver="branch-bound"
        )
        assert merged == bnb["subtrees_pruned"]

    def test_improvements_and_evaluations_reach_driver_scope(self):
        space, evaluator = _eyeriss_fixture()
        registry = MetricsRegistry()
        with obs_scope(registry=registry):
            result = BranchBoundSearch(
                space, evaluator, seed=0, workers=2
            ).run()
        assert (
            registry.counter("search.evaluations").value(
                driver="branch-bound"
            )
            == result.num_evaluated
        )
        assert (
            registry.counter("search.improvements").value(
                driver="branch-bound"
            )
            > 0
        )

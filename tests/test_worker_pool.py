"""Unit tests for the reusable worker pool and the incumbent protocol.

:mod:`repro.search.worker_pool` is shared infrastructure for every
parallel searcher, so its contracts are pinned independently of any one
driver: dispatch-order results across all pool modes, context-matched
shared-state construction, the fork→spawn→sequential ladder, worker
error propagation (never swallowed by the ladder), and the strictly-
monotone incumbent cell in both its local and cross-process forms.
"""

from __future__ import annotations

import math
import multiprocessing

import pytest

from repro import obs
from repro.exceptions import SearchError, WorkerError
from repro.obs import MetricsRegistry, obs_scope
from repro.search.worker_pool import (
    OBS_SNAPSHOT_KEY,
    LocalIncumbent,
    SharedIncumbent,
    collect_worker_obs,
    run_jobs,
    run_under_worker_obs,
)


def _square_entry(state, job):
    return state.get("offset", 0) + job * job


def _incumbent_entry(state, job):
    incumbent = state["incumbent"]
    incumbent.offer(float(job), (job,))
    return incumbent.read()


def _failing_entry(state, job):
    if job == state["bad_job"]:
        raise WorkerError(job, 0, "synthetic unit failure")
    return job


class TestRunJobs:
    def test_sequential_for_single_worker(self):
        results, mode, shared = run_jobs(
            _square_entry, {"offset": 1}, [1, 2, 3], workers=1
        )
        assert results == [2, 5, 10]
        assert mode == "sequential"
        assert shared == {}

    def test_pool_results_in_dispatch_order(self):
        jobs = list(range(12))
        results, mode, _ = run_jobs(
            _square_entry, {}, jobs, workers=2, start_method="fork"
        )
        assert mode == "fork"
        assert results == [job * job for job in jobs]

    def test_shared_factory_merges_into_state(self):
        calls = []

        def factory(ctx):
            calls.append(ctx)
            return {"incumbent": LocalIncumbent(1)}

        results, mode, shared = run_jobs(
            _incumbent_entry, {}, [5, 3, 9], workers=1,
            shared_factory=factory,
        )
        assert mode == "sequential"
        assert calls == [None]
        # One incumbent instance spans all sequential jobs: monotone min.
        assert results == [5.0, 3.0, 3.0]
        assert shared["incumbent"].peek() == (3.0, (3,))

    def test_shared_incumbent_tightens_across_pool(self):
        results, mode, shared = run_jobs(
            _incumbent_entry, {}, [8, 6, 4, 2], workers=2,
            start_method="fork",
            shared_factory=SharedIncumbent.factory(1),
        )
        assert mode == "fork"
        # Every read is <= the job's own offer (some other worker may
        # have tightened further), and the final cell holds the min.
        assert all(
            value <= job for value, job in zip(results, [8, 6, 4, 2])
        )
        assert shared["incumbent"].peek() == (2.0, (2,))

    def test_ladder_falls_back_to_sequential(self, monkeypatch):
        def explode(*args, **kwargs):
            raise ValueError("no contexts available")

        monkeypatch.setattr(
            "multiprocessing.get_context", explode, raising=True
        )
        results, mode, _ = run_jobs(
            _square_entry, {}, [1, 2, 3, 4], workers=4
        )
        assert mode == "sequential"
        assert results == [1, 4, 9, 16]

    def test_worker_error_not_swallowed_by_ladder(self):
        # WorkerError subclasses SearchError, not RuntimeError: the
        # ladder's except clause must let it propagate instead of
        # retrying the failed attempt on the next start method.
        with pytest.raises(WorkerError) as info:
            run_jobs(
                _failing_entry, {"bad_job": 2}, [1, 2, 3], workers=2,
                start_method="fork",
            )
        assert info.value.index == 2

    def test_rejects_bad_workers(self):
        with pytest.raises(SearchError):
            run_jobs(_square_entry, {}, [1], workers=0)


class TestIncumbents:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: LocalIncumbent(2),
            lambda: SharedIncumbent(
                multiprocessing.get_context("fork"), 2
            ),
        ],
        ids=["local", "shared"],
    )
    def test_protocol(self, make):
        cell = make()
        assert cell.read() == math.inf
        assert cell.peek() == (math.inf, (-1, -1))
        assert cell.offer(10.0, (1, 2)) is True
        assert cell.read() == 10.0
        # Equal offers lose: strictly-better keeps the cell monotone and
        # the accept return value meaningful for cut bookkeeping.
        assert cell.offer(10.0, (3, 4)) is False
        assert cell.offer(11.0, (3, 4)) is False
        assert cell.peek() == (10.0, (1, 2))
        assert cell.offer(9.5, (5, 6)) is True
        assert cell.peek() == (9.5, (5, 6))

    def test_factory_is_context_matched(self):
        build = SharedIncumbent.factory(3, 42.0)
        local = build(None)["incumbent"]
        assert isinstance(local, LocalIncumbent)
        assert local.read() == 42.0
        ctx = multiprocessing.get_context("fork")
        shared = build(ctx)["incumbent"]
        assert isinstance(shared, SharedIncumbent)
        assert shared.peek() == (42.0, (-1, -1, -1))


class TestObsSnapshots:
    def _work(self):
        obs.inc("search.subtrees_pruned", 7, driver="branch-bound")
        return "done"

    def test_disabled_returns_no_snapshot(self):
        result, snapshot = run_under_worker_obs(False, self._work)
        assert result == "done"
        assert snapshot is None

    def test_snapshot_roundtrip_merges_into_driver_scope(self):
        result, snapshot = run_under_worker_obs(True, self._work)
        assert result == "done"
        assert snapshot is not None
        stats_a = {OBS_SNAPSHOT_KEY: snapshot, "other": 1}
        _, snapshot_b = run_under_worker_obs(True, self._work)
        stats_b = {OBS_SNAPSHOT_KEY: snapshot_b}
        registry = MetricsRegistry()
        with obs_scope(registry=registry):
            collect_worker_obs([stats_a, stats_b])
        # Transport keys are stripped; counters sum across workers.
        assert OBS_SNAPSHOT_KEY not in stats_a
        assert OBS_SNAPSHOT_KEY not in stats_b
        assert stats_a["other"] == 1
        assert (
            registry.counter("search.subtrees_pruned").value(
                driver="branch-bound"
            )
            == 14
        )

    def test_collect_safe_without_active_scope(self):
        _, snapshot = run_under_worker_obs(True, self._work)
        stats = {OBS_SNAPSHOT_KEY: snapshot}
        collect_worker_obs([stats])
        assert OBS_SNAPSHOT_KEY not in stats

"""Unit tests for the Eq. (5) chain recursions — the paper's core math."""

from repro.mapping import Loop, Mapping, chain_trip_count, temporal_steps
from repro.mapping.chains import chain_coverage, dim_chain, tile_extent
from repro.mapping.nest import LevelNest


class TestChainTripCount:
    def test_empty_chain(self):
        assert chain_trip_count([]) == 1

    def test_single_perfect_loop(self):
        assert chain_trip_count([Loop("D", 20)]) == 20

    def test_perfect_chain_is_product(self):
        loops = [Loop("D", 4), Loop("D", 5), Loop("D", 3)]
        assert chain_trip_count(loops) == 60

    def test_paper_fig5_example(self):
        # DRAM for 1, GLB for 17, spatial parFor 6 last 4 -> covers 100.
        loops = [
            Loop("D", 1),
            Loop("D", 17),
            Loop("D", 6, 4, spatial=True),
        ]
        assert chain_trip_count(loops) == 100

    def test_paper_eq5_walkthrough(self):
        # L2 = 0*1 + 1 - 1 = 0; L1 = 0*17 + 17 - 1 = 16;
        # L0 = 16*6 + 4 - 1 = 99; points = 100.
        partial = [Loop("D", 1), Loop("D", 17)]
        assert chain_trip_count(partial) == 17

    def test_remainder_one(self):
        # bound 5 remainder 1 after an outer loop of 3: 2 full passes of 5
        # plus a final pass of 1 = 11 leaf points.
        loops = [Loop("D", 3), Loop("D", 5, 1)]
        assert chain_trip_count(loops) == 2 * 5 + 1

    def test_coverage_alias(self):
        loops = [Loop("D", 7, 3)]
        assert chain_coverage(loops) == chain_trip_count(loops) == 3


class TestTemporalSteps:
    def test_paper_fig5_cycle_saving(self):
        # Ruby: 17 steps vs PFM's 20 — "saves 3 cycles" in the paper.
        ruby = [Loop("D", 1), Loop("D", 17), Loop("D", 6, 4, spatial=True)]
        pfm = [Loop("D", 1), Loop("D", 20), Loop("D", 5, spatial=True)]
        assert temporal_steps(ruby) == 17
        assert temporal_steps(pfm) == 20

    def test_spatial_only_chain_is_one_step(self):
        assert temporal_steps([Loop("D", 6, 4, spatial=True)]) == 1

    def test_temporal_remainder(self):
        loops = [Loop("D", 3), Loop("D", 5, 2)]
        assert temporal_steps(loops) == 2 * 5 + 2

    def test_perfect_product(self):
        loops = [Loop("D", 3), Loop("D", 4, spatial=True), Loop("D", 5)]
        assert temporal_steps(loops) == 15

    def test_spatial_shadows_inner_temporal_remainder(self):
        # 8 PEs run a 9-iteration loop in lockstep; the last PE's single
        # iteration hides behind its siblings' full passes: 9 steps.
        loops = [Loop("D", 8, spatial=True), Loop("D", 9, 1)]
        assert chain_trip_count(loops) == 64
        assert temporal_steps(loops) == 9

    def test_single_active_instance_not_shadowed(self):
        # A spatial loop that narrows to one active instance in the final
        # window cannot hide the short pass: 2 full windows of 5 steps plus
        # a lone 2-step window = 12 steps.
        loops = [Loop("D", 3), Loop("D", 2, 1, spatial=True), Loop("D", 5, 2)]
        assert temporal_steps(loops) == 2 * 5 + 2

    def test_shadowing_only_from_same_dim_spatial(self):
        # temporal_steps operates on one dimension's chain; a purely
        # temporal chain keeps its remainder savings.
        loops = [Loop("D", 4), Loop("D", 7, 3)]
        assert temporal_steps(loops) == 3 * 7 + 3


class TestTileExtent:
    def test_uses_full_bounds(self):
        loops = [Loop("D", 6, 4, spatial=True), Loop("D", 3, 1)]
        assert tile_extent(loops) == 18

    def test_empty(self):
        assert tile_extent([]) == 1


class TestDimChain:
    def test_extracts_in_nest_order(self):
        mapping = Mapping(
            levels=(
                LevelNest("DRAM", temporal=(Loop("C", 2), Loop("M", 3))),
                LevelNest(
                    "GLB",
                    temporal=(Loop("C", 5),),
                    spatial=(Loop("M", 4, spatial=True),),
                ),
            )
        )
        c_chain = dim_chain(mapping, "C")
        assert [p.loop.bound for p in c_chain] == [2, 5]
        m_chain = dim_chain(mapping, "M")
        assert [(p.loop.bound, p.loop.spatial) for p in m_chain] == [
            (3, False),
            (4, True),
        ]

    def test_positions_are_global(self):
        mapping = Mapping(
            levels=(
                LevelNest("DRAM", temporal=(Loop("C", 2), Loop("M", 3))),
                LevelNest("GLB", temporal=(Loop("C", 5),)),
            )
        )
        positions = [p.position for p in dim_chain(mapping, "C")]
        assert positions == [0, 2]

"""Unit tests for dataflow analysis (keeper paths, boundaries, cutoffs)."""

import pytest

from repro.exceptions import SpecError
from repro.mapping import Loop, Mapping
from repro.model.dataflow import (
    innermost_relevant_temporal_position,
    keeper_levels,
    nontrivial_loops,
    storage_positions,
    tensor_paths,
    total_positions,
)


def eyeriss_mapping(small_conv):
    return Mapping.from_blocks(
        [
            ("DRAM", [Loop("P", 6)], []),
            (
                "GlobalBuffer",
                [Loop("C", 8), Loop("Q", 6)],
                [Loop("M", 8, spatial=True, axis=0)],
            ),
            ("PEBuffer", [Loop("M", 2), Loop("R", 3), Loop("S", 3)], []),
        ]
    )


class TestPositions:
    def test_storage_positions(self, small_conv):
        mapping = eyeriss_mapping(small_conv)
        assert storage_positions(mapping) == [0, 1, 4]

    def test_total_positions(self, small_conv):
        assert total_positions(eyeriss_mapping(small_conv)) == 7

    def test_nontrivial_filters_unit_bounds(self, small_conv):
        mapping = Mapping.from_blocks(
            [("DRAM", [Loop("P", 1), Loop("C", 4)], [])]
        )
        loops = nontrivial_loops(mapping)
        assert len(loops) == 1 and loops[0].loop.dim == "C"


class TestKeeperLevels:
    def test_eyeriss_weights_bypass_glb(self, eyeriss):
        assert keeper_levels(eyeriss, "Weights") == [0, 2]

    def test_eyeriss_inputs_all_levels(self, eyeriss):
        assert keeper_levels(eyeriss, "Inputs") == [0, 1, 2]


class TestTensorPaths:
    def test_paths_structure(self, eyeriss, small_conv):
        mapping = eyeriss_mapping(small_conv)
        paths = tensor_paths(eyeriss, small_conv, mapping)
        weights = paths["Weights"]
        assert weights.keeper_levels == (0, 2)
        # DRAM -> PEBuffer, then PEBuffer -> compute.
        assert len(weights.boundaries) == 2
        assert weights.boundaries[0].parent_level == 0
        assert weights.boundaries[0].child_level == 2
        assert weights.boundaries[0].boundary_position == 4
        assert weights.boundaries[1].child_level is None
        assert weights.boundaries[1].boundary_position == 7

    def test_inputs_three_boundaries(self, eyeriss, small_conv):
        paths = tensor_paths(eyeriss, small_conv, eyeriss_mapping(small_conv))
        assert len(paths["Inputs"].boundaries) == 3

    def test_rejects_fully_bypassed_tensor(self, small_conv):
        from repro.arch import Architecture, StorageLevel

        arch = Architecture(
            name="bad",
            levels=(
                StorageLevel.build("DRAM", keeps={"Inputs", "Outputs"}),
                StorageLevel.build(
                    "L1", capacity_words=64, keeps={"Inputs", "Outputs"}
                ),
            ),
        )
        mapping = Mapping.from_blocks([("DRAM", [], []), ("L1", [], [])])
        with pytest.raises(SpecError, match="bypassed"):
            tensor_paths(arch, small_conv, mapping)

    def test_rejects_tensor_missing_from_outermost(self, small_conv):
        from repro.arch import Architecture, StorageLevel

        arch = Architecture(
            name="bad",
            levels=(
                StorageLevel.build("DRAM", keeps={"Inputs", "Outputs"}),
                StorageLevel.build("L1", capacity_words=64),
            ),
        )
        mapping = Mapping.from_blocks([("DRAM", [], []), ("L1", [], [])])
        with pytest.raises(SpecError, match="outermost"):
            tensor_paths(arch, small_conv, mapping)


class TestCutoff:
    def test_innermost_relevant_temporal(self, small_conv):
        mapping = eyeriss_mapping(small_conv)
        loops = nontrivial_loops(mapping)
        # Weights relevant dims: M, C, R, S. Innermost relevant temporal
        # above the compute boundary is S at position 6.
        cutoff = innermost_relevant_temporal_position(
            loops, frozenset({"M", "C", "R", "S"}), total_positions(mapping)
        )
        assert cutoff == 6

    def test_spatial_loops_do_not_set_cutoff(self, small_conv):
        mapping = Mapping.from_blocks(
            [
                ("DRAM", [Loop("C", 8)], []),
                ("GlobalBuffer", [], [Loop("M", 8, spatial=True)]),
                ("PEBuffer", [], []),
            ]
        )
        loops = nontrivial_loops(mapping)
        cutoff = innermost_relevant_temporal_position(
            loops, frozenset({"M"}), 10
        )
        assert cutoff == -1

    def test_boundary_restricts_search(self, small_conv):
        mapping = eyeriss_mapping(small_conv)
        loops = nontrivial_loops(mapping)
        # Above the PEBuffer boundary (position 4) the innermost relevant
        # temporal loop for weights is C at position 1.
        cutoff = innermost_relevant_temporal_position(
            loops, frozenset({"M", "C", "R", "S"}), 4
        )
        assert cutoff == 1

    def test_no_relevant_loops(self, small_conv):
        mapping = eyeriss_mapping(small_conv)
        loops = nontrivial_loops(mapping)
        cutoff = innermost_relevant_temporal_position(loops, frozenset(), 7)
        assert cutoff == -1

"""Mapper-service lifecycle tests: specs, admission, pool, jobs, HTTP API.

The deterministic queue/priority/coalescing behaviour is tested against a
:class:`JobManager` whose execution is replaced with event-gated fakes (no
timing assumptions); the HTTP layer is exercised against a real
:class:`MappingService` on an ephemeral loopback port, including result
parity with the direct in-process :func:`find_best_mapping` path; crash
recovery is tested both in-process (journal -> fresh manager) and across
a real SIGKILL of a ``repro serve`` subprocess.
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.arch import toy_linear_architecture
from repro.core import find_best_mapping
from repro.exceptions import (
    AdmissionError,
    ReproError,
    ServiceError,
    SpecError,
)
from repro.io.journal import Journal
from repro.io.serde import architecture_to_dict, workload_to_dict
from repro.obs.metrics import MetricsRegistry
from repro.problem import GemmLayer
from repro.search.result import SearchResult
from repro.service import (
    AdmissionController,
    EvaluatorPool,
    JobManager,
    MappingService,
    parse_search_spec,
)

pytestmark = pytest.mark.service

WORKLOAD = {"gemm": {"m": 32, "n": 8, "k": 16}}


def request_payload(seed=7, **overrides):
    payload = {
        "arch": "toy16",
        "workload": dict(WORKLOAD),
        "max_evaluations": 150,
        "patience": None,
        "seed": seed,
    }
    payload.update(overrides)
    return payload


def http(url, data=None, method=None):
    """(status, parsed-json) for one request; errors don't raise."""
    request = urllib.request.Request(url, data=data, method=method)
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), error.headers


def post_json(url, payload):
    return http(url, data=json.dumps(payload).encode("utf-8"))


@pytest.fixture
def service(tmp_path):
    registry = MetricsRegistry()
    svc = MappingService(
        registry,
        workers=2,
        journal_path=str(tmp_path / "service.jsonl"),
    )
    with svc:
        yield svc


def wait_terminal(url, job_id, timeout_s=30.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status, body, _ = http(f"{url}/v1/jobs/{job_id}")
        assert status == 200
        if body["state"] in ("ok", "failed", "cancelled"):
            return body
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never reached a terminal state")


class TestParseSearchSpec:
    def test_preset_and_dict_coalesce_to_one_signature(self):
        arch = toy_linear_architecture(16)
        workload = GemmLayer("request", m=32, n=8, k=16).workload()
        by_preset = parse_search_spec(request_payload())
        by_dict = parse_search_spec(
            request_payload(
                arch=architecture_to_dict(arch),
                workload=workload_to_dict(workload),
            )
        )
        assert by_preset.signature == by_dict.signature

    def test_defaults_and_explicit_defaults_coalesce(self):
        implicit = parse_search_spec(request_payload())
        explicit = parse_search_spec(
            request_payload(objective="edp", strategy="random")
        )
        assert implicit.signature == explicit.signature

    def test_different_seed_is_a_different_request(self):
        assert (
            parse_search_spec(request_payload(seed=1)).signature
            != parse_search_spec(request_payload(seed=2)).signature
        )

    def test_priority_does_not_change_the_signature(self):
        assert (
            parse_search_spec(request_payload(priority="high")).signature
            == parse_search_spec(request_payload(priority="low")).signature
        )

    def test_unknown_keys_rejected(self):
        with pytest.raises(SpecError, match="max_evals"):
            parse_search_spec(request_payload(max_evals=5))

    def test_unknown_preset_rejected(self):
        with pytest.raises(SpecError, match="preset"):
            parse_search_spec(request_payload(arch="tpu9000"))

    def test_bad_priority_rejected(self):
        with pytest.raises(SpecError, match="priority"):
            parse_search_spec(request_payload(priority="urgent"))

    def test_conv_shorthand(self):
        spec = parse_search_spec(
            request_payload(
                workload={"conv": {"c": 4, "m": 8, "p": 5, "q": 5}}
            )
        )
        assert spec.workload.size("M") == 8

    def test_non_dict_body_rejected(self):
        with pytest.raises(SpecError, match="JSON object"):
            parse_search_spec([1, 2, 3])


class TestAdmissionController:
    def test_admits_below_limit_and_rejects_at_limit(self):
        controller = AdmissionController(queue_limit=2)
        controller.admit(0, workers=1)
        controller.admit(1, workers=1)
        with pytest.raises(AdmissionError) as excinfo:
            controller.admit(2, workers=1)
        error = excinfo.value
        assert error.http_status == 429
        assert error.payload()["retry_after_s"] > 0
        assert controller.rejected == 1

    def test_retry_after_scales_with_queue_and_workers(self):
        controller = AdmissionController(queue_limit=64)
        for _ in range(8):
            controller.observe_latency(2.0)
        assert controller.retry_after_s(8, workers=1) == pytest.approx(16.0)
        assert controller.retry_after_s(8, workers=4) == pytest.approx(4.0)

    def test_cold_start_uses_fallback_latency(self):
        controller = AdmissionController()
        assert controller.mean_latency_s() > 0

    def test_zero_limit_rejected(self):
        with pytest.raises(SpecError):
            AdmissionController(queue_limit=0)


class TestEvaluatorPool:
    def _pair(self, n=16, m=32):
        return (
            toy_linear_architecture(n),
            GemmLayer(f"g{m}", m=m, n=8, k=16).workload(),
        )

    def test_acquire_reuses_warm_entry(self):
        pool = EvaluatorPool(max_entries=2)
        arch, workload = self._pair()
        first, reused_first = pool.acquire(arch, workload)
        second, reused_second = pool.acquire(arch, workload)
        assert not reused_first and reused_second
        assert first is second
        assert first.evaluator.cache is first.cache
        pool.release(first)
        pool.release(second)
        assert pool.stats()["reuses"] == 1

    def test_cold_entries_evicted_before_warm(self):
        pool = EvaluatorPool(max_entries=2)
        cold_pair = self._pair(m=10)
        warm_pair = self._pair(m=20)
        cold, _ = pool.acquire(*cold_pair)
        warm, _ = pool.acquire(*warm_pair)
        # Warm the second entry: hits since admission are its temperature.
        mapping = None
        from repro.mapspace.factory import make_mapspace
        import random

        space = make_mapspace(warm_pair[0], warm_pair[1], "ruby-s")
        mapping = space.sample(random.Random(0))
        warm.evaluator.evaluate(mapping)
        warm.evaluator.evaluate(mapping)  # second call is the hit
        assert warm.temperature() >= 1
        pool.release(cold)
        pool.release(warm)
        third, _ = pool.acquire(*self._pair(m=30))
        pool.release(third)
        sigs = {e.signature for e in pool._entries.values()}
        assert warm.signature in sigs  # warm kept
        assert cold.signature not in sigs  # cold evicted
        assert pool.stats()["evictions"] == 1

    def test_pinned_entries_never_evicted(self):
        pool = EvaluatorPool(max_entries=1)
        first, _ = pool.acquire(*self._pair(m=10))
        second, _ = pool.acquire(*self._pair(m=20))
        # Both pinned: pool grows past its bound instead of evicting.
        assert len(pool) == 2
        pool.release(first)
        pool.release(second)
        assert len(pool) == 1

    def test_release_without_acquire_raises(self):
        pool = EvaluatorPool(max_entries=1)
        entry, _ = pool.acquire(*self._pair())
        pool.release(entry)
        with pytest.raises(ServiceError, match="released"):
            pool.release(entry)


def _fake_result():
    return SearchResult(
        best=None,
        objective="edp",
        num_evaluated=0,
        num_valid=0,
        terminated_by="budget",
    )


class GatedManager(JobManager):
    """JobManager whose jobs block on events instead of searching."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.release_gate = threading.Event()
        self.running_gate = threading.Event()
        self.executed = []

    def _execute(self, job):
        self.running_gate.set()
        if not self.release_gate.wait(timeout=30):
            raise AssertionError("gate never released")
        self.executed.append(job.id)
        return _fake_result()


class TestJobManagerScheduling:
    def test_priority_orders_the_queue(self):
        manager = GatedManager(workers=1)
        manager.start()
        try:
            blocker, _ = manager.submit(request_payload(seed=0))
            manager.running_gate.wait(timeout=10)
            low, _ = manager.submit(request_payload(seed=1, priority="low"))
            normal, _ = manager.submit(request_payload(seed=2))
            high, _ = manager.submit(request_payload(seed=3, priority="high"))
            manager.release_gate.set()
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                if len(manager.executed) == 4:
                    break
                time.sleep(0.01)
            assert manager.executed == [blocker.id, high.id, normal.id, low.id]
        finally:
            manager.release_gate.set()
            manager.stop()

    def test_duplicate_requests_coalesce_while_in_flight(self):
        manager = GatedManager(workers=1)
        manager.start()
        try:
            job, coalesced = manager.submit(request_payload(seed=5))
            dup, dup_coalesced = manager.submit(request_payload(seed=5))
            assert not coalesced and dup_coalesced
            assert dup is job
            assert job.attached == 1
            assert manager.coalesced == 1
        finally:
            manager.release_gate.set()
            manager.stop()

    def test_queue_full_raises_admission_error(self):
        manager = GatedManager(workers=1, queue_limit=2)
        manager.start()
        try:
            manager.submit(request_payload(seed=0))  # runs (blocked on gate)
            manager.running_gate.wait(timeout=10)
            manager.submit(request_payload(seed=1))  # queued
            manager.submit(request_payload(seed=2))  # queued (at limit)
            with pytest.raises(AdmissionError):
                manager.submit(request_payload(seed=3))
        finally:
            manager.release_gate.set()
            manager.stop()

    def test_cancel_queued_job(self):
        manager = GatedManager(workers=1)
        manager.start()
        try:
            manager.submit(request_payload(seed=0))
            manager.running_gate.wait(timeout=10)
            queued, _ = manager.submit(request_payload(seed=1))
            cancelled = manager.cancel(queued.id)
            assert cancelled.state == "cancelled"
            # A new identical request gets a fresh job, not the corpse.
            fresh, coalesced = manager.submit(request_payload(seed=1))
            assert not coalesced and fresh.id != queued.id
        finally:
            manager.release_gate.set()
            manager.stop()

    def test_cancel_running_job_conflicts(self):
        manager = GatedManager(workers=1)
        manager.start()
        try:
            job, _ = manager.submit(request_payload(seed=0))
            manager.running_gate.wait(timeout=10)
            with pytest.raises(ServiceError) as excinfo:
                manager.cancel(job.id)
            assert excinfo.value.http_status == 409
        finally:
            manager.release_gate.set()
            manager.stop()

    def test_cancel_unknown_job(self):
        manager = GatedManager(workers=1)
        with pytest.raises(SpecError):
            manager.cancel("j999999-deadbeef")


class TestJobManagerResume:
    def test_unfinished_jobs_recovered_terminal_skipped(self, tmp_path):
        journal_path = str(tmp_path / "svc.jsonl")
        # Accept jobs without ever starting workers: all stay queued but
        # journaled, the moral equivalent of a SIGKILL mid-queue.
        before = JobManager(workers=1, journal_path=journal_path)
        first, _ = before.submit(request_payload(seed=1))
        second, _ = before.submit(request_payload(seed=2))
        third, _ = before.submit(request_payload(seed=3))
        # Simulate one job having finished before the crash.
        Journal(journal_path).append(
            {"kind": "job", "job_id": first.id, "status": "ok"}
        )
        after = JobManager(workers=2, journal_path=journal_path)
        recovered = after.resume()
        assert recovered == 2
        assert {j.id for j in after.jobs()} == {second.id, third.id}
        after.start()
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if all(j.terminal for j in after.jobs()):
                    break
                time.sleep(0.05)
            assert all(j.state == "ok" for j in after.jobs())
        finally:
            after.stop()
        terminal = {
            r["job_id"]
            for r in Journal(journal_path).read()
            if r.get("kind") == "job" and r.get("status") == "ok"
        }
        assert terminal == {first.id, second.id, third.id}

    def test_resumed_seq_counter_does_not_collide(self, tmp_path):
        journal_path = str(tmp_path / "svc.jsonl")
        before = JobManager(workers=1, journal_path=journal_path)
        old, _ = before.submit(request_payload(seed=1))
        after = JobManager(workers=1, journal_path=journal_path)
        after.resume()
        fresh, _ = after.submit(request_payload(seed=99))
        assert fresh.seq > old.seq
        assert fresh.id != old.id


class TestServiceHTTP:
    def test_lifecycle_and_parity_with_direct_search(self, service):
        status, body, _ = post_json(
            service.url + "/v1/search", request_payload()
        )
        assert status == 202
        assert body["state"] in ("queued", "running")
        assert body["coalesced"] is False
        final = wait_terminal(service.url, body["job_id"])
        assert final["state"] == "ok"
        best = final["result"]["best"]
        direct = find_best_mapping(
            toy_linear_architecture(16),
            GemmLayer("request", m=32, n=8, k=16).workload(),
            max_evaluations=150,
            patience=None,
            seed=7,
        )
        assert best["edp"] == direct.best.edp
        assert best["cycles"] == direct.best.cycles
        assert best["energy_pj"] == direct.best.energy_pj

    def test_duplicate_submission_returns_same_job(self, service):
        payload = request_payload(seed=11, max_evaluations=400)
        _, first, _ = post_json(service.url + "/v1/search", payload)
        _, second, _ = post_json(service.url + "/v1/search", payload)
        if second["coalesced"]:
            assert second["job_id"] == first["job_id"]
        else:
            # The first job can finish before the duplicate arrives; the
            # service then correctly treats it as new work.
            assert wait_terminal(service.url, first["job_id"])["state"] == "ok"
        wait_terminal(service.url, second["job_id"])

    def test_bad_spec_maps_to_400_with_taxonomy_payload(self, service):
        status, body, _ = post_json(
            service.url + "/v1/search", request_payload(arch="nope")
        )
        assert status == 400
        assert body["error"]["type"] == "SpecError"
        assert body["error"]["http_status"] == 400
        assert body["error"]["exit_code"] == 2

    def test_invalid_json_body_maps_to_400(self, service):
        status, body, _ = http(service.url + "/v1/search", data=b"{nope")
        assert status == 400
        assert body["error"]["type"] == "SpecError"

    def test_unknown_job_maps_to_404(self, service):
        status, body, _ = http(service.url + "/v1/jobs/j000042-cafecafe")
        assert status == 404
        assert body["error"]["type"] == "SpecError"

    def test_queue_full_maps_to_429_with_retry_after(self, service):
        manager = service.manager
        gate = threading.Event()

        def blocked(job):
            gate.wait(timeout=30)
            return _fake_result()

        manager._execute = blocked
        manager.admission.queue_limit = 1
        try:
            seen = []
            for seed in range(12):
                status, body, headers = post_json(
                    service.url + "/v1/search", request_payload(seed=seed)
                )
                seen.append(status)
                if status == 429:
                    assert body["error"]["type"] == "AdmissionError"
                    assert int(headers["Retry-After"]) >= 1
                    break
            assert seen[-1] == 429
        finally:
            gate.set()

    def test_progress_endpoint_is_per_job(self, service):
        _, body, _ = post_json(
            service.url + "/v1/search", request_payload(seed=21)
        )
        job_id = body["job_id"]
        status, progress, _ = http(
            f"{service.url}/v1/jobs/{job_id}/progress"
        )
        assert status == 200
        assert progress["job_id"] == job_id
        for snapshot in progress["searches"]:
            assert snapshot["owner"] == job_id
        wait_terminal(service.url, job_id)

    def test_stats_and_metrics_served_on_same_listener(self, service):
        _, body, _ = post_json(
            service.url + "/v1/search", request_payload(seed=31)
        )
        wait_terminal(service.url, body["job_id"])
        status, stats, _ = http(service.url + "/v1/stats")
        assert status == 200
        assert stats["jobs"]["ok"] >= 1
        assert stats["pool"]["size"] >= 1
        with urllib.request.urlopen(service.url + "/metrics") as response:
            text = response.read().decode()
        assert "service_jobs_ok" in text

    def test_delete_running_job_maps_to_409(self, service):
        _, body, _ = post_json(
            service.url + "/v1/search",
            request_payload(seed=41, max_evaluations=3000),
        )
        job_id = body["job_id"]
        status, cancel_body, _ = http(
            f"{service.url}/v1/jobs/{job_id}", method="DELETE"
        )
        if status == 200:
            assert cancel_body["state"] == "cancelled"
        else:
            # Already running (or finished): the conflict contract.
            assert status == 409
            assert cancel_body["error"]["type"] == "ServiceError"
            wait_terminal(service.url, job_id)


class TestServeSubprocess:
    def test_sigkill_then_resume_loses_no_accepted_jobs(self, tmp_path):
        journal = str(tmp_path / "serve.jsonl")
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        args = [
            sys.executable, "-m", "repro", "serve",
            "--workers", "1", "--journal", journal,
        ]
        proc = subprocess.Popen(
            args, stdout=subprocess.PIPE, env=env, text=True
        )
        try:
            banner = proc.stdout.readline()
            url = re.search(r"http://\S+", banner).group(0)
            accepted = []
            for seed in range(3):
                status, body, _ = post_json(
                    url + "/v1/search",
                    request_payload(seed=seed, max_evaluations=2000),
                )
                assert status == 202
                accepted.append(body["job_id"])
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10)

        resumed = subprocess.Popen(
            args + ["--resume"], stdout=subprocess.PIPE, env=env, text=True
        )
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                terminal = {
                    record["job_id"]: record["status"]
                    for record in Journal(journal).read()
                    if record.get("kind") == "job"
                }
                if set(accepted) <= set(terminal):
                    break
                time.sleep(0.2)
            assert set(accepted) <= set(terminal), (
                f"accepted jobs lost across SIGKILL: "
                f"{set(accepted) - set(terminal)}"
            )
            assert all(terminal[job] == "ok" for job in accepted)
        finally:
            resumed.terminate()
            resumed.wait(timeout=10)

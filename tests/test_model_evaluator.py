"""Unit tests for the Evaluator and Evaluation."""

import pytest

from repro.energy import EnergyTable
from repro.energy.table import LevelEnergy
from repro.mapping import Loop, Mapping
from repro.model import Evaluator


def pfm_mapping():
    return Mapping.from_blocks(
        [
            ("DRAM", [Loop("D", 1)], []),
            ("GlobalBuffer", [Loop("D", 20)], [Loop("D", 5, spatial=True)]),
            ("PERegister", [], []),
        ]
    )


def ruby_mapping():
    return Mapping.from_blocks(
        [
            ("DRAM", [Loop("D", 1)], []),
            ("GlobalBuffer", [Loop("D", 17)], [Loop("D", 6, 4, spatial=True)]),
            ("PERegister", [], []),
        ]
    )


class TestEvaluator:
    def test_paper_toy_edp_improvement(self, toy_evaluator):
        pfm = toy_evaluator.evaluate(pfm_mapping())
        ruby = toy_evaluator.evaluate(ruby_mapping())
        assert pfm.valid and ruby.valid
        # Same data movement, 3 fewer cycles -> ~15% EDP reduction.
        assert ruby.energy_pj == pytest.approx(pfm.energy_pj)
        assert ruby.cycles == 17 and pfm.cycles == 20
        assert ruby.edp == pytest.approx(pfm.edp * 17 / 20)

    def test_invalid_mapping_reported_not_raised(self, toy_evaluator):
        bad = Mapping.from_blocks(
            [
                ("DRAM", [Loop("D", 19)], []),
                ("GlobalBuffer", [], [Loop("D", 5, spatial=True)]),
                ("PERegister", [], []),
            ]
        )
        result = toy_evaluator.evaluate(bad)
        assert not result.valid
        assert result.violations
        assert result.cycles == 0

    def test_energy_breakdown_sums_to_total(self, toy_evaluator):
        result = toy_evaluator.evaluate(pfm_mapping())
        assert sum(result.energy_breakdown_pj.values()) == pytest.approx(
            result.energy_pj
        )

    def test_breakdown_has_compute_entry(self, toy_evaluator):
        result = toy_evaluator.evaluate(pfm_mapping())
        assert result.energy_breakdown_pj["compute"] == pytest.approx(
            100 * toy_evaluator.energy_table.mac_pj
        )

    def test_metric_lookup(self, toy_evaluator):
        result = toy_evaluator.evaluate(pfm_mapping())
        assert result.metric("edp") == result.edp
        assert result.metric("energy") == result.energy_pj
        assert result.metric("delay") == result.cycles
        with pytest.raises(ValueError):
            result.metric("nope")

    def test_custom_energy_table(self, toy_arch, vector100):
        table = EnergyTable(
            levels={
                "DRAM": LevelEnergy(1.0, 1.0),
                "GlobalBuffer": LevelEnergy(1.0, 1.0),
                "PERegister": LevelEnergy(1.0, 1.0),
            },
            mac_pj=0.0,
        )
        evaluator = Evaluator(toy_arch, vector100, energy_table=table)
        result = evaluator.evaluate(pfm_mapping())
        # 100 reads X + 100 writes Y at three levels each, plus 100 reads Y
        # (RMW/drains) and X fills: count explicitly from the access counts.
        total_accesses = sum(result.access_counts.reads.values()) + sum(
            result.access_counts.writes.values()
        )
        assert result.energy_pj == pytest.approx(total_accesses)

    def test_best_of_selects_minimum(self, toy_evaluator):
        best = toy_evaluator.best_of([pfm_mapping(), ruby_mapping()])
        assert best.cycles == 17

    def test_best_of_ignores_invalid(self, toy_evaluator):
        bad = Mapping.from_blocks(
            [
                ("DRAM", [Loop("D", 2)], []),
                ("GlobalBuffer", [Loop("D", 50)], []),
                ("PERegister", [], []),
            ]
        )
        best = toy_evaluator.best_of([bad, pfm_mapping()])
        assert best.cycles == 20

    def test_best_of_empty_returns_none(self, toy_evaluator):
        assert toy_evaluator.best_of([]) is None

    def test_evaluate_many(self, toy_evaluator):
        results = toy_evaluator.evaluate_many([pfm_mapping(), ruby_mapping()])
        assert [r.cycles for r in results] == [20, 17]

    def test_utilization_reported(self, toy_evaluator):
        result = toy_evaluator.evaluate(ruby_mapping())
        assert result.utilization == pytest.approx(100 / (17 * 6))

"""Unit tests for the static-leakage and NoC energy extensions."""

import pytest

from repro.arch import eyeriss_like, toy_linear_architecture
from repro.energy.noc import average_hops, noc_energy_pj
from repro.energy.static import static_energy_pj, static_power_mw
from repro.mapping import Loop, Mapping
from repro.model import Evaluator
from repro.model.access_counts import AccessCounts


class TestStaticEnergy:
    def test_power_scales_with_area(self):
        small = static_power_mw(eyeriss_like(2, 7))
        big = static_power_mw(eyeriss_like(16, 16))
        assert big > small > 0

    def test_energy_linear_in_cycles(self):
        arch = eyeriss_like()
        one = static_energy_pj(arch, 1_000)
        two = static_energy_pj(arch, 2_000)
        assert two == pytest.approx(2 * one)

    def test_faster_clock_less_leakage_per_run(self):
        arch = eyeriss_like()
        slow = static_energy_pj(arch, 1_000, clock_ghz=0.5)
        fast = static_energy_pj(arch, 1_000, clock_ghz=2.0)
        assert fast < slow

    def test_rejects_bad_args(self):
        arch = eyeriss_like()
        with pytest.raises(ValueError):
            static_energy_pj(arch, -1)
        with pytest.raises(ValueError):
            static_energy_pj(arch, 10, clock_ghz=0)


class TestNocEnergy:
    def test_average_hops(self):
        assert average_hops(1) == 0.0
        assert average_hops(168) == pytest.approx(168**0.5)
        with pytest.raises(ValueError):
            average_hops(0)

    def test_energy_counts_fanout_levels_only(self):
        arch = toy_linear_architecture(9)  # fanout below DRAM only
        counts = AccessCounts()
        counts.add_reads(0, "X", 100)  # DRAM reads cross the array network
        counts.add_reads(1, "X", 100)  # PE-level reads stay local
        energy = noc_energy_pj(arch, counts)
        assert energy == pytest.approx(100 * 3.0 * 0.06)

    def test_zero_without_traffic(self):
        arch = toy_linear_architecture(9)
        assert noc_energy_pj(arch, AccessCounts()) == 0.0


class TestEvaluatorIntegration:
    def pfm_mapping(self):
        return Mapping.from_blocks(
            [
                ("DRAM", [Loop("D", 1)], []),
                ("GlobalBuffer", [Loop("D", 20)], [Loop("D", 5, spatial=True)]),
                ("PERegister", [], []),
            ]
        )

    def test_flags_add_breakdown_entries(self, toy_arch, vector100):
        evaluator = Evaluator(
            toy_arch, vector100, include_noc=True, include_static=True
        )
        result = evaluator.evaluate(self.pfm_mapping())
        assert "noc" in result.energy_breakdown_pj
        assert "static" in result.energy_breakdown_pj
        assert sum(result.energy_breakdown_pj.values()) == pytest.approx(
            result.energy_pj
        )

    def test_default_excludes_extensions(self, toy_evaluator):
        result = toy_evaluator.evaluate(self.pfm_mapping())
        assert "noc" not in result.energy_breakdown_pj
        assert "static" not in result.energy_breakdown_pj

    def test_static_term_rewards_faster_mappings(self, toy_arch, vector100):
        evaluator = Evaluator(toy_arch, vector100, include_static=True)
        slow = evaluator.evaluate(self.pfm_mapping())
        fast = evaluator.evaluate(
            Mapping.from_blocks(
                [
                    ("DRAM", [Loop("D", 1)], []),
                    ("GlobalBuffer", [Loop("D", 17)],
                     [Loop("D", 6, 4, spatial=True)]),
                    ("PERegister", [], []),
                ]
            )
        )
        # With leakage, the 17-cycle Ruby mapping now wins on ENERGY too,
        # not just on EDP.
        assert fast.energy_pj < slow.energy_pj

"""Unit tests for mapping analysis (explain_mapping)."""

import pytest

from repro.mapping import Loop, Mapping
from repro.model import explain_mapping, format_report
from repro.model.analysis import LevelOccupancy, ReuseFactor


def staged_mapping():
    return Mapping.from_blocks(
        [
            ("DRAM", [Loop("D", 2)], []),
            ("GlobalBuffer", [Loop("D", 10)], [Loop("D", 5, spatial=True)]),
            ("PERegister", [], []),
        ]
    )


class TestExplainMapping:
    def test_occupancy_entries(self, toy_arch, vector100):
        report = explain_mapping(toy_arch, vector100, staged_mapping())
        glb = [
            o for o in report.occupancies
            if o.level_name == "GlobalBuffer" and o.tensor_name == "X"
        ]
        assert len(glb) == 1
        assert glb[0].tile_words == 50
        assert glb[0].capacity_words == 512
        assert glb[0].occupancy == pytest.approx(50 / 512)

    def test_dram_unbounded_occupancy(self, toy_arch, vector100):
        report = explain_mapping(toy_arch, vector100, staged_mapping())
        dram = [o for o in report.occupancies if o.level_name == "DRAM"]
        assert all(o.occupancy is None for o in dram)

    def test_reuse_factors_present(self, toy_arch, vector100):
        report = explain_mapping(toy_arch, vector100, staged_mapping())
        assert any(
            r.level_name == "GlobalBuffer" and r.tensor_name == "X"
            for r in report.reuse
        )

    def test_energy_shares_sum_to_one(self, toy_arch, vector100):
        report = explain_mapping(toy_arch, vector100, staged_mapping())
        assert sum(report.energy_shares.values()) == pytest.approx(1.0)

    def test_invalid_mapping_rejected(self, toy_arch, vector100):
        bad = Mapping.from_blocks(
            [
                ("DRAM", [Loop("D", 3)], []),
                ("GlobalBuffer", [Loop("D", 10)], [Loop("D", 5, spatial=True)]),
                ("PERegister", [], []),
            ]
        )
        with pytest.raises(ValueError, match="invalid"):
            explain_mapping(toy_arch, vector100, bad)

    def test_bypassed_tensor_excluded_from_occupancy(self, toy_arch, vector100):
        mapping = staged_mapping().with_bypass([("GlobalBuffer", "X")])
        report = explain_mapping(toy_arch, vector100, mapping)
        assert not any(
            o.level_name == "GlobalBuffer" and o.tensor_name == "X"
            for o in report.occupancies
        )


class TestFormatReport:
    def test_contains_sections(self, toy_arch, vector100):
        report = explain_mapping(toy_arch, vector100, staged_mapping())
        text = format_report(report)
        assert "Buffer occupancy" in text
        assert "Access profile" in text
        assert "Energy" in text
        assert "utilization" in text

    def test_energy_sorted_descending(self, toy_arch, vector100):
        report = explain_mapping(toy_arch, vector100, staged_mapping())
        text = format_report(report)
        energy_section = text.split("Energy")[1]
        shares = [
            float(line.split()[-1].rstrip("%"))
            for line in energy_section.splitlines()
            if "%" in line
        ]
        assert shares == sorted(shares, reverse=True)


class TestDataclasses:
    def test_occupancy_none_capacity(self):
        occupancy = LevelOccupancy("L", "T", 10, None)
        assert occupancy.occupancy is None

    def test_reuse_zero_fills(self):
        reuse = ReuseFactor("L", "T", reads_served=10, fills=0)
        assert reuse.factor is None

    def test_reuse_factor_value(self):
        reuse = ReuseFactor("L", "T", reads_served=100, fills=10)
        assert reuse.factor == 10.0

"""Property-based tests (hypothesis) for the core invariants.

These pin the mathematical backbone of the reproduction:

* Eq. (5) coverage exactness — every generated chain covers its dimension
  exactly, for every mapspace kind, with no over-compute.
* Mixed-radix remainder uniqueness and reconstruction.
* PFM ⊆ Ruby-S ⊆ Ruby (mapspace inclusion on bound tuples).
* Conservation: relevant-dimension traffic per sweep equals the dimension
  coverage regardless of where remainders fall.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.arch import toy_linear_architecture
from repro.mapping import Loop, chain_trip_count, temporal_steps
from repro.mapspace import DimAllocator, assign_remainders, build_slots
from repro.mapspace.generator import MapspaceKind, MapSpace
from repro.model import compute_access_counts, compute_cycles
from repro.problem.gemm import GemmLayer, vector_workload
from repro.utils.mathx import from_mixed_radix, mixed_radix_digits, product

sizes = st.integers(min_value=1, max_value=4096)
small_sizes = st.integers(min_value=1, max_value=64)
bounds_lists = st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=5)


class TestMixedRadixProperties:
    @given(st.integers(min_value=0, max_value=10**6), bounds_lists)
    def test_roundtrip(self, value, radices):
        digits = mixed_radix_digits(value, radices)
        assert from_mixed_radix(digits, radices) == value

    @given(st.integers(min_value=0, max_value=10**6), bounds_lists)
    def test_digits_in_range(self, value, radices):
        digits = mixed_radix_digits(value, radices)
        for digit, radix in zip(digits, radices):
            assert 0 <= digit < radix


class TestRemainderAssignment:
    @given(sizes, bounds_lists)
    def test_coverage_exact_whenever_assignable(self, size, bounds):
        from repro.exceptions import MapspaceError

        try:
            remainders = assign_remainders(size, bounds)
        except MapspaceError:
            # Bounds can't cover the size; that's a legal rejection.
            assert product(bounds) < size or not bounds
            return
        loops = [Loop("D", b, r) for b, r in zip(bounds, remainders)]
        assert chain_trip_count(loops) == size

    @given(sizes, bounds_lists)
    def test_remainders_within_bounds(self, size, bounds):
        from repro.exceptions import MapspaceError

        try:
            remainders = assign_remainders(size, bounds)
        except MapspaceError:
            return
        for r, b in zip(remainders, bounds):
            assert 1 <= r <= b

    @given(sizes)
    def test_perfect_bounds_get_perfect_remainders(self, size):
        # A divisor chain must come back untouched (PFM is a fixed point).
        from repro.utils.mathx import divisors

        rng = random.Random(size)
        d1 = rng.choice(divisors(size))
        d2 = rng.choice(divisors(size // d1))
        bounds = [size // (d1 * d2), d2, d1]
        assert assign_remainders(size, bounds) == tuple(bounds)


class TestChainRecursions:
    @given(st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=20),  # bound
            st.integers(min_value=1, max_value=20),  # remainder (clamped)
            st.booleans(),  # spatial
        ),
        min_size=0,
        max_size=6,
    ))
    def test_temporal_steps_never_exceed_trip_count(self, raw):
        loops = [
            Loop("D", b, min(r, b), spatial=s) for b, r, s in raw
        ]
        assert temporal_steps(loops) <= chain_trip_count(loops)

    @given(st.lists(st.integers(min_value=1, max_value=12), min_size=1, max_size=5))
    def test_perfect_chain_is_product(self, bounds):
        loops = [Loop("D", b) for b in bounds]
        assert chain_trip_count(loops) == product(bounds)


@st.composite
def allocator_samples(draw):
    size = draw(st.integers(min_value=1, max_value=512))
    kind = draw(st.sampled_from(list(MapspaceKind)))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return size, kind, seed


class TestAllocatorProperties:
    @given(allocator_samples())
    @settings(max_examples=200, deadline=None)
    def test_every_sampled_chain_covers_exactly(self, params):
        size, kind, seed = params
        arch = toy_linear_architecture(9)
        slots = build_slots(arch)
        allocator = DimAllocator(
            slots,
            spatial_imperfect=kind.spatial_imperfect,
            temporal_imperfect=kind.temporal_imperfect,
        )
        rng = random.Random(seed)
        budgets = {i: s.fanout_cap for i, s in enumerate(slots) if s.spatial}
        chain = allocator.sample_chain("D", size, rng, budgets)
        loops = [
            Loop("D", b, r, spatial=slot.spatial)
            for b, r, slot in zip(chain.bounds, chain.remainders, slots)
        ]
        assert chain_trip_count(loops) == size

    @given(st.integers(min_value=2, max_value=128))
    @settings(max_examples=50, deadline=None)
    def test_pfm_chains_subset_of_ruby_s_subset_of_ruby(self, size):
        arch = toy_linear_architecture(9)
        slots = build_slots(arch)

        def bound_set(spatial_imperfect, temporal_imperfect):
            allocator = DimAllocator(slots, spatial_imperfect, temporal_imperfect)
            return {c.bounds for c in allocator.enumerate_chains("D", size)}

        pfm = bound_set(False, False)
        ruby_s = bound_set(True, False)
        ruby = bound_set(True, True)
        assert pfm <= ruby_s <= ruby


class TestMappingProperties:
    @given(
        st.sampled_from(list(MapspaceKind)),
        st.integers(min_value=1, max_value=300),
        st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=150, deadline=None)
    def test_no_overcompute_and_cycles_bounded(self, kind, size, seed):
        # Ruby mappings never execute more points than the problem has:
        # cycles * PEs >= MACs always, and per-dim coverage is exact, so
        # total MACs == problem size (no padding-style zero work).
        arch = toy_linear_architecture(9)
        workload = vector_workload("v", size)
        space = MapSpace(arch, workload, kind)
        mapping = space.sample(random.Random(seed))
        cycles = compute_cycles(workload, mapping)
        assert cycles * arch.total_compute_units >= size
        assert cycles <= size  # never slower than fully serial

    @given(
        st.sampled_from(list(MapspaceKind)),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=150, deadline=None)
    def test_dram_reads_bounded_below_by_tensor_size(self, kind, m, n, k, seed):
        # Each input tensor crosses the DRAM boundary at least once per
        # element and the output is drained at least once per element.
        arch = toy_linear_architecture(9)
        workload = GemmLayer("g", m, n, k).workload()
        space = MapSpace(arch, workload, kind)
        mapping = space.sample(random.Random(seed))
        counts = compute_access_counts(arch, workload, mapping)
        assert counts.reads[(0, "A")] >= m * k
        assert counts.reads[(0, "B")] >= k * n
        assert counts.writes[(0, "C")] >= m * n

    @given(
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=100, deadline=None)
    def test_vector_traffic_exactly_conserved(self, size, seed):
        # For the rank-1 distribution problem nothing is reused, so every
        # level moves exactly `size` elements regardless of remainders.
        arch = toy_linear_architecture(9)
        workload = vector_workload("v", size)
        space = MapSpace(arch, workload, MapspaceKind.RUBY)
        mapping = space.sample(random.Random(seed))
        counts = compute_access_counts(arch, workload, mapping)
        assert counts.reads[(0, "X")] == size
        assert counts.writes[(0, "Y")] == size

"""Unit tests for the latency/utilization model."""

import pytest

from repro.arch import StorageLevel, Architecture, toy_glb_architecture
from repro.mapping import Loop, Mapping
from repro.model import compute_cycles, compute_utilization
from repro.model.access_counts import AccessCounts
from repro.model.latency import bandwidth_stall_cycles, spatial_allocations
from repro.problem import GemmLayer
from repro.problem.gemm import vector_workload


class TestComputeCycles:
    def test_paper_fig5_cycles(self, vector100):
        pfm = Mapping.from_blocks(
            [
                ("DRAM", [Loop("D", 1)], []),
                ("GlobalBuffer", [Loop("D", 20)], [Loop("D", 5, spatial=True)]),
                ("PERegister", [], []),
            ]
        )
        ruby = Mapping.from_blocks(
            [
                ("DRAM", [Loop("D", 1)], []),
                ("GlobalBuffer", [Loop("D", 17)], [Loop("D", 6, 4, spatial=True)]),
                ("PERegister", [], []),
            ]
        )
        assert compute_cycles(vector100, pfm) == 20
        assert compute_cycles(vector100, ruby) == 17

    def test_fully_temporal(self, vector100):
        mapping = Mapping.from_blocks(
            [
                ("DRAM", [Loop("D", 100)], []),
                ("GlobalBuffer", [], []),
                ("PERegister", [], []),
            ]
        )
        assert compute_cycles(vector100, mapping) == 100

    def test_multi_dim_product(self):
        w = GemmLayer("g", m=4, n=3, k=2).workload()
        mapping = Mapping.from_blocks(
            [
                ("DRAM", [Loop("M", 4), Loop("N", 3), Loop("K", 2)], []),
                ("Buf", [], []),
            ]
        )
        assert compute_cycles(w, mapping) == 24

    def test_spatial_loops_free(self):
        w = GemmLayer("g", m=4, n=3, k=2).workload()
        mapping = Mapping.from_blocks(
            [
                ("DRAM", [Loop("N", 3), Loop("K", 2)], [Loop("M", 4, spatial=True)]),
                ("Buf", [], []),
            ]
        )
        assert compute_cycles(w, mapping) == 6


class TestUtilization:
    def test_full(self, toy_arch, vector100):
        # 100 MACs in 17 cycles on 6 PEs: 100 / 102.
        util = compute_utilization(toy_arch, vector100, 17)
        assert util == pytest.approx(100 / (17 * 6))

    def test_pfm_baseline(self, toy_arch, vector100):
        util = compute_utilization(toy_arch, vector100, 20)
        assert util == pytest.approx(100 / 120)

    def test_rejects_zero_cycles(self, toy_arch, vector100):
        with pytest.raises(ValueError):
            compute_utilization(toy_arch, vector100, 0)

    def test_never_above_one_for_valid_cycle_counts(self, toy_arch, vector100):
        util = compute_utilization(toy_arch, vector100, 17)
        assert util <= 1.0


class TestSpatialAllocations:
    def test_reports_per_level(self, vector100):
        mapping = Mapping.from_blocks(
            [
                ("DRAM", [Loop("D", 20)], []),
                ("GlobalBuffer", [], [Loop("D", 5, spatial=True)]),
                ("PERegister", [], []),
            ]
        )
        assert spatial_allocations(mapping) == {
            "DRAM": 1, "GlobalBuffer": 5, "PERegister": 1,
        }


class TestBandwidthStalls:
    def test_disabled_by_default(self, toy_arch):
        counts = AccessCounts()
        counts.add_reads(1, "X", 10**9)
        assert bandwidth_stall_cycles(toy_arch, counts) is None

    def test_bounded_level_limits(self):
        arch = Architecture(
            name="bw",
            levels=(
                StorageLevel.build("DRAM", bandwidth_words_per_cycle=2.0),
                StorageLevel.build("Buf", capacity_words=1024),
            ),
        )
        counts = AccessCounts()
        counts.add_reads(0, "X", 100)
        counts.add_writes(0, "Y", 100)
        assert bandwidth_stall_cycles(arch, counts) == 100

    def test_instances_share_load(self):
        arch = Architecture(
            name="bw",
            levels=(
                StorageLevel.build("DRAM", fanout=4),
                StorageLevel.build(
                    "Buf", capacity_words=1024, bandwidth_words_per_cycle=1.0
                ),
            ),
        )
        counts = AccessCounts()
        counts.add_reads(1, "X", 100)
        assert bandwidth_stall_cycles(arch, counts) == 25

"""Unit tests for the search strategies."""

import pytest

from repro.exceptions import SearchError
from repro.mapspace import pfm_mapspace, ruby_s_mapspace
from repro.model import Evaluator
from repro.search import (
    ExhaustiveSearch,
    GeneticSearch,
    RandomSearch,
    exhaustive_search,
    random_search,
)
from repro.search.result import ConvergencePoint, SearchResult


class TestRandomSearch:
    def test_finds_valid_mapping(self, toy_arch, vector100, toy_evaluator):
        space = pfm_mapspace(toy_arch, vector100)
        result = random_search(space, toy_evaluator, seed=0, max_evaluations=500)
        assert result.best is not None
        assert result.best.valid
        assert result.num_valid > 0

    def test_deterministic_given_seed(self, toy_arch, vector100, toy_evaluator):
        space = ruby_s_mapspace(toy_arch, vector100)
        a = random_search(space, toy_evaluator, seed=42, max_evaluations=300)
        b = random_search(space, toy_evaluator, seed=42, max_evaluations=300)
        assert a.best_metric == b.best_metric
        assert a.num_valid == b.num_valid

    def test_patience_terminates_early(self, toy_arch, vector100, toy_evaluator):
        space = pfm_mapspace(toy_arch, vector100)
        result = random_search(
            space, toy_evaluator, seed=0, max_evaluations=100_000, patience=50
        )
        assert result.terminated_by == "patience"
        assert result.num_evaluated < 100_000

    def test_budget_termination(self, toy_arch, vector100, toy_evaluator):
        space = pfm_mapspace(toy_arch, vector100)
        result = random_search(
            space, toy_evaluator, seed=0, max_evaluations=20, patience=None
        )
        assert result.terminated_by == "budget"
        assert result.num_evaluated == 20

    def test_curve_monotone_decreasing(self, toy_arch, vector100, toy_evaluator):
        space = ruby_s_mapspace(toy_arch, vector100)
        result = random_search(space, toy_evaluator, seed=1, max_evaluations=500)
        metrics = [p.best_metric for p in result.curve]
        assert metrics == sorted(metrics, reverse=True)

    def test_objective_energy(self, toy_arch, vector100, toy_evaluator):
        space = pfm_mapspace(toy_arch, vector100)
        result = random_search(
            space, toy_evaluator, objective="energy", seed=0, max_evaluations=300
        )
        assert result.best_metric == pytest.approx(result.best.energy_pj)

    def test_rejects_bad_budget(self, toy_arch, vector100, toy_evaluator):
        space = pfm_mapspace(toy_arch, vector100)
        with pytest.raises(SearchError):
            RandomSearch(space, toy_evaluator, max_evaluations=0)

    def test_rejects_bad_patience(self, toy_arch, vector100, toy_evaluator):
        space = pfm_mapspace(toy_arch, vector100)
        with pytest.raises(SearchError):
            RandomSearch(space, toy_evaluator, patience=0)


class TestExhaustiveSearch:
    def test_finds_global_best(self, toy_arch, vector100, toy_evaluator):
        space = pfm_mapspace(toy_arch, vector100)
        result = exhaustive_search(space, toy_evaluator)
        assert result.terminated_by == "exhausted"
        # Random search can never beat the exhaustive optimum.
        sampled = random_search(space, toy_evaluator, seed=0, max_evaluations=2000)
        assert result.best_metric <= sampled.best_metric

    def test_limit_enforced(self, linear_arch9, toy_evaluator):
        from repro.problem.gemm import vector_workload
        from repro.mapspace import ruby_mapspace

        w = vector_workload("v", 500)
        space = ruby_mapspace(linear_arch9, w)
        evaluator = Evaluator(linear_arch9, w)
        with pytest.raises(SearchError):
            ExhaustiveSearch(space, evaluator, limit=50).run()

    def test_counts_unique_only(self, toy_arch, vector100, toy_evaluator):
        space = pfm_mapspace(toy_arch, vector100)
        result = ExhaustiveSearch(space, toy_evaluator).run()
        assert result.num_valid <= result.num_evaluated


class TestGeneticSearch:
    def test_runs_and_finds_valid(self, toy_arch, vector100, toy_evaluator):
        space = ruby_s_mapspace(toy_arch, vector100)
        search = GeneticSearch(
            space, toy_evaluator, population_size=10, generations=5, seed=0
        )
        result = search.run()
        assert result.best is not None
        assert result.best.valid

    def test_deterministic(self, toy_arch, vector100, toy_evaluator):
        space = ruby_s_mapspace(toy_arch, vector100)
        a = GeneticSearch(space, toy_evaluator, population_size=8,
                          generations=4, seed=7).run()
        b = GeneticSearch(space, toy_evaluator, population_size=8,
                          generations=4, seed=7).run()
        assert a.best_metric == b.best_metric

    def test_at_least_matches_random_on_toy(self, toy_arch, vector100,
                                            toy_evaluator):
        space = ruby_s_mapspace(toy_arch, vector100)
        genetic = GeneticSearch(
            space, toy_evaluator, population_size=20, generations=10, seed=3
        ).run()
        rand = random_search(
            space, toy_evaluator, seed=3,
            max_evaluations=genetic.num_evaluated // 2, patience=None,
        )
        assert genetic.best_metric <= rand.best_metric * 1.2

    def test_rejects_bad_params(self, toy_arch, vector100, toy_evaluator):
        space = ruby_s_mapspace(toy_arch, vector100)
        with pytest.raises(SearchError):
            GeneticSearch(space, toy_evaluator, population_size=1)
        with pytest.raises(SearchError):
            GeneticSearch(space, toy_evaluator, mutation_rate=2.0)


class TestSearchResult:
    def test_best_so_far_series(self):
        result = SearchResult(
            best=None,
            objective="edp",
            num_evaluated=10,
            num_valid=5,
            terminated_by="budget",
            curve=[
                ConvergencePoint(evaluations=3, best_metric=10.0),
                ConvergencePoint(evaluations=7, best_metric=4.0),
            ],
        )
        series = result.best_so_far_series(10)
        assert series[0] == float("inf")
        assert series[2] == 10.0
        assert series[5] == 10.0
        assert series[6] == 4.0
        assert series[9] == 4.0

    def test_best_metric_none_when_no_best(self):
        result = SearchResult(
            best=None, objective="edp", num_evaluated=0, num_valid=0,
            terminated_by="budget",
        )
        assert result.best_metric is None

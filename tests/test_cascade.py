"""Unit tests for cascaded (fused) multi-layer evaluation."""

import pytest

from repro.arch import eyeriss_like
from repro.cascade import CascadeStage, evaluate_cascade, format_cascade
from repro.core import find_best_mapping
from repro.exceptions import SpecError
from repro.mapspace.constraints import eyeriss_row_stationary
from repro.problem import ConvLayer


def searched(arch, layer, seed=0):
    workload = layer.workload()
    best = find_best_mapping(
        arch, workload, kind="ruby-s", seed=seed,
        max_evaluations=600, patience=200,
        constraints=eyeriss_row_stationary(),
    ).best
    return workload, best


@pytest.fixture(scope="module")
def chain():
    arch = eyeriss_like()
    small = searched(arch, ConvLayer("a", c=16, m=16, p=7, q=7, r=3, s=3))
    mid = searched(arch, ConvLayer("b", c=16, m=32, p=7, q=7))
    huge = searched(
        arch, ConvLayer("c", c=32, m=64, p=56, q=56), seed=1
    )  # output 200k words: cannot stay on-chip
    return arch, small, mid, huge


class TestEvaluateCascade:
    def test_small_boundary_fuses(self, chain):
        arch, small, mid, _ = chain
        result = evaluate_cascade(arch, [small, mid])
        assert result.fused == [True]
        assert result.dram_words_saved == 2 * 16 * 7 * 7
        assert result.energy_pj < result.baseline_energy_pj

    def test_huge_boundary_does_not_fuse(self, chain):
        arch, _, mid, huge = chain
        result = evaluate_cascade(arch, [mid, huge, mid])
        # mid -> huge: mid's output (32*7*7) fits -> fused.
        # huge -> mid: huge's output (64*56*56) exceeds the GLB -> not.
        assert result.fused == [True, False]

    def test_cycles_are_summed(self, chain):
        arch, small, mid, _ = chain
        result = evaluate_cascade(arch, [small, mid])
        assert result.cycles == small[1].cycles + mid[1].cycles

    def test_savings_equal_dram_round_trip(self, chain):
        from repro.energy import estimate_energy_table

        arch, small, mid, _ = chain
        table = estimate_energy_table(arch)
        result = evaluate_cascade(arch, [small, mid], energy_table=table)
        words = small[0].tensor_size("Outputs")
        expected = words * (table.write_pj("DRAM") + table.read_pj("DRAM"))
        assert result.baseline_energy_pj - result.energy_pj == pytest.approx(
            expected
        )

    def test_reserve_fraction_gates_fusion(self, chain):
        arch, small, mid, _ = chain
        words = small[0].tensor_size("Outputs")
        tiny_fraction = words / (2 * arch.level("GlobalBuffer").capacity_words)
        result = evaluate_cascade(
            arch, [small, mid], reserve_fraction=tiny_fraction
        )
        assert result.fused == [False]
        assert result.energy_pj == result.baseline_energy_pj

    def test_rejects_bad_fraction(self, chain):
        arch, small, mid, _ = chain
        with pytest.raises(SpecError):
            evaluate_cascade(arch, [small, mid], reserve_fraction=0.0)

    def test_rejects_invalid_stage(self, chain):
        from repro.model import Evaluator
        from repro.mapping import Loop, Mapping

        arch, small, _, _ = chain
        workload = small[0]
        bad = Evaluator(arch, workload).evaluate(
            Mapping.from_blocks(
                [
                    ("DRAM", [Loop("C", 3)], []),
                    ("GlobalBuffer", [], []),
                    ("PEBuffer", [], []),
                ]
            )
        )
        with pytest.raises(SpecError):
            CascadeStage(workload, bad)

    def test_format_mentions_fusion(self, chain):
        arch, small, mid, _ = chain
        text = format_cascade(evaluate_cascade(arch, [small, mid]))
        assert "on-chip" in text
        assert "TOTAL" in text
        assert "Cascade" in text

    def test_edp_improves_with_fusion(self, chain):
        arch, small, mid, _ = chain
        result = evaluate_cascade(arch, [small, mid])
        assert result.edp < result.baseline_edp

"""Unit tests for fault-tolerant campaigns: journal, retry, resume."""

import json
import os

import pytest

from repro.arch import toy_glb_architecture
from repro.exceptions import CampaignError, EvaluationError
from repro.io.journal import Journal
from repro.problem.gemm import GemmLayer, vector_workload
from repro.search.campaign import (
    CampaignConfig,
    CampaignJob,
    campaign_scope,
    campaign_status,
    run_campaign,
)
from repro.utils.faults import Fault, FaultPlan


def _job(job_id="job-a", size=60, budget=80, seeds=(1,)):
    return CampaignJob(
        job_id=job_id,
        arch=toy_glb_architecture(6, 1024),
        workload=vector_workload(f"v{size}", size),
        kind="ruby-s",
        max_evaluations=budget,
        patience=None,
        seeds=seeds,
    )


def _infeasible_job(job_id="doomed"):
    """A 16-byte GLB fits no tile: every mapping is invalid."""
    return CampaignJob(
        job_id=job_id,
        arch=toy_glb_architecture(6, 16),
        workload=GemmLayer("g64", 64, 64, 64).workload(),
        kind="pfm",
        max_evaluations=40,
        patience=None,
        seeds=(1,),
    )


class TestJournal:
    def test_append_read_round_trip(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append({"kind": "campaign", "config": {}, "jobs": []})
        journal.append({"kind": "job", "job_id": "a", "status": "ok"})
        records = journal.read()
        assert [r["kind"] for r in records] == ["campaign", "job"]

    def test_torn_trailing_line_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.append({"kind": "job", "job_id": "a", "status": "ok"})
        with open(path, "a") as f:
            f.write('{"kind": "job", "job_id": "b", "sta')  # SIGKILL mid-write
        records = Journal(path).read()
        assert len(records) == 1
        assert records[0]["job_id"] == "a"

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('not json\n{"kind": "job", "job_id": "a"}\n')
        with pytest.raises(CampaignError):
            Journal(path).read()

    def test_terminal_jobs_latest_wins(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append({"kind": "job", "job_id": "a", "status": "quarantined"})
        journal.append({"kind": "attempt", "job_id": "a", "attempt": 0})
        journal.append({"kind": "job", "job_id": "a", "status": "ok"})
        terminal = journal.terminal_jobs()
        assert terminal["a"]["status"] == "ok"

    def test_missing_journal_header_raises(self, tmp_path):
        with pytest.raises(CampaignError):
            Journal(tmp_path / "absent.jsonl").header()


class TestRunCampaign:
    def test_small_campaign_completes(self, tmp_path):
        jobs = [_job("a", 60), _job("b", 100)]
        result = run_campaign(jobs, journal_path=tmp_path / "j.jsonl")
        assert result.complete
        assert result.num_ok == 2
        assert set(result.best_edp()) == {"a", "b"}
        for outcome in result.outcomes:
            assert outcome.metrics["edp"] > 0
            assert outcome.mapping is not None

    def test_duplicate_job_ids_rejected(self, tmp_path):
        with pytest.raises(CampaignError, match="duplicate"):
            run_campaign([_job("a"), _job("a")])

    def test_resume_replays_identical_metrics(self, tmp_path):
        jobs = [_job("a", 60), _job("b", 100)]
        first = run_campaign(jobs, journal_path=tmp_path / "j.jsonl")
        second = run_campaign(jobs, journal_path=tmp_path / "j.jsonl")
        assert second.num_resumed == 2
        assert all(o.from_journal for o in second.outcomes)
        assert second.best_edp() == first.best_edp()

    def test_interrupted_campaign_resume_parity(self, tmp_path):
        """A campaign cut short mid-run finishes to the same best EDPs."""
        jobs = [_job("a", 60), _job("b", 100), _job("c", 113)]
        reference = run_campaign(jobs, journal_path=tmp_path / "ref.jsonl")

        partial = run_campaign(
            jobs, journal_path=tmp_path / "cut.jsonl", max_jobs=1
        )
        assert not partial.complete
        assert len(partial.outcomes) < len(jobs)

        resumed = run_campaign(jobs, journal_path=tmp_path / "cut.jsonl")
        assert resumed.complete
        assert resumed.num_resumed >= 1
        assert resumed.best_edp() == reference.best_edp()

    def test_search_failure_quarantines_not_raises(self, tmp_path):
        """A job whose mapspace has no valid mapping becomes a structured
        quarantine record; its siblings still complete."""
        jobs = [_infeasible_job("doomed"), _job("fine", 60)]
        result = run_campaign(
            jobs,
            journal_path=tmp_path / "j.jsonl",
            retries=0,
            backoff_s=0.01,
        )
        assert result.complete
        doomed = result.by_id()["doomed"]
        assert doomed.status == "quarantined"
        assert doomed.error["type"] == "SearchError"
        assert doomed.error["exit_code"] == 5
        assert result.by_id()["fine"].ok

    def test_raise_fault_retries_then_quarantines(self, tmp_path):
        plan = FaultPlan(
            [Fault("a", attempt, "raise", message="boom") for attempt in range(3)]
        )
        result = run_campaign(
            [_job("a", 60)],
            journal_path=tmp_path / "j.jsonl",
            retries=2,
            backoff_s=0.01,
            fault_plan=plan,
        )
        outcome = result.by_id()["a"]
        assert outcome.status == "quarantined"
        assert outcome.attempts == 3
        assert outcome.error["type"] == "EvaluationError"
        assert "boom" in outcome.error["message"]
        attempts = [
            r for r in Journal(tmp_path / "j.jsonl").read()
            if r.get("kind") == "attempt"
        ]
        assert [r["attempt"] for r in attempts] == [0, 1, 2]

    def test_transient_fault_retried_to_success(self, tmp_path):
        plan = FaultPlan([Fault("a", 0, "raise", message="transient")])
        clean = run_campaign([_job("a", 60)])
        result = run_campaign(
            [_job("a", 60)],
            journal_path=tmp_path / "j.jsonl",
            retries=2,
            backoff_s=0.01,
            fault_plan=plan,
        )
        outcome = result.by_id()["a"]
        assert outcome.ok
        assert outcome.attempts == 2
        assert outcome.metrics["edp"] == clean.by_id()["a"].metrics["edp"]

    def test_retry_quarantined_reruns_job(self, tmp_path):
        plan = FaultPlan(
            [Fault("a", attempt, "raise") for attempt in range(2)]
        )
        first = run_campaign(
            [_job("a", 60)],
            journal_path=tmp_path / "j.jsonl",
            retries=1,
            backoff_s=0.01,
            fault_plan=plan,
        )
        assert first.by_id()["a"].status == "quarantined"

        kept = run_campaign([_job("a", 60)], journal_path=tmp_path / "j.jsonl")
        assert kept.by_id()["a"].status == "quarantined"
        assert kept.by_id()["a"].from_journal

        rescued = run_campaign(
            [_job("a", 60)],
            journal_path=tmp_path / "j.jsonl",
            retry_quarantined=True,
        )
        assert rescued.by_id()["a"].ok


@pytest.mark.skipif(
    not hasattr(os, "fork"), reason="process isolation needs fork"
)
class TestProcessIsolation:
    """Timeout and crash containment require real worker processes."""

    def test_hang_times_out_then_quarantines(self, tmp_path):
        plan = FaultPlan(
            [Fault("a", attempt, "hang", seconds=60.0) for attempt in range(2)]
        )
        result = run_campaign(
            [_job("a", 60)],
            journal_path=tmp_path / "j.jsonl",
            timeout_s=0.4,
            retries=1,
            backoff_s=0.01,
            start_method="fork",
            fault_plan=plan,
        )
        outcome = result.by_id()["a"]
        assert outcome.status == "quarantined"
        assert outcome.attempts == 2
        assert outcome.error["type"] == "JobTimeoutError"
        assert outcome.error["exit_code"] == 7

    def test_hang_then_recover(self, tmp_path):
        plan = FaultPlan([Fault("a", 0, "hang", seconds=60.0)])
        result = run_campaign(
            [_job("a", 60)],
            timeout_s=0.4,
            retries=1,
            backoff_s=0.01,
            start_method="fork",
            fault_plan=plan,
        )
        outcome = result.by_id()["a"]
        assert outcome.ok
        assert outcome.attempts == 2

    def test_worker_crash_detected_and_retried(self, tmp_path):
        plan = FaultPlan([Fault("a", 0, "crash")])
        clean = run_campaign([_job("a", 60)])
        result = run_campaign(
            [_job("a", 60)],
            journal_path=tmp_path / "j.jsonl",
            retries=1,
            backoff_s=0.01,
            start_method="fork",
            fault_plan=plan,
        )
        outcome = result.by_id()["a"]
        assert outcome.ok
        assert outcome.attempts == 2
        assert outcome.metrics["edp"] == clean.by_id()["a"].metrics["edp"]
        attempts = [
            r for r in Journal(tmp_path / "j.jsonl").read()
            if r.get("kind") == "attempt"
        ]
        assert attempts[0]["error"]["type"] == "JobCrashError"

    def test_repeated_crash_quarantines(self, tmp_path):
        plan = FaultPlan([Fault("a", attempt, "crash") for attempt in range(2)])
        result = run_campaign(
            [_job("a", 60)],
            retries=1,
            backoff_s=0.01,
            start_method="fork",
            fault_plan=plan,
        )
        outcome = result.by_id()["a"]
        assert outcome.status == "quarantined"
        assert outcome.error["type"] == "JobCrashError"
        assert outcome.error["exit_code"] == 8


class TestCampaignStatus:
    def test_status_summarizes_partial_journal(self, tmp_path):
        jobs = [_job("a", 60), _job("b", 100), _job("c", 113)]
        run_campaign(
            jobs,
            journal_path=tmp_path / "j.jsonl",
            max_jobs=1,
            header_config={"suite": "test"},
        )
        status = campaign_status(tmp_path / "j.jsonl")
        assert status["total"] == 3
        assert len(status["ok"]) == 1
        assert len(status["pending"]) == 2
        assert not status["complete"]
        assert status["config"]["suite"] == "test"

    def test_status_missing_journal_raises(self, tmp_path):
        with pytest.raises(CampaignError):
            campaign_status(tmp_path / "absent.jsonl")


class TestCampaignScope:
    """The experiments' choke point: multi_seed_search under a scope."""

    def test_multi_seed_search_journals_and_replays(self, tmp_path):
        from repro.experiments.common import multi_seed_search

        arch = toy_glb_architecture(6, 1024)
        workload = vector_workload("v96", 96)
        kwargs = dict(
            kind="ruby-s", seeds=(1, 2), max_evaluations=80, patience=None
        )
        plain = multi_seed_search(arch, workload, **kwargs)

        config = CampaignConfig(journal=tmp_path / "j.jsonl")
        with campaign_scope(config):
            first = multi_seed_search(arch, workload, **kwargs)
        journal_after_first = (tmp_path / "j.jsonl").read_text()
        with campaign_scope(config):
            replayed = multi_seed_search(arch, workload, **kwargs)

        assert first.edp == plain.edp
        assert replayed.edp == plain.edp
        assert replayed.cycles == plain.cycles
        # The replay re-evaluated the journaled mapping: no new job record.
        terminal = Journal(tmp_path / "j.jsonl").terminal_jobs()
        assert len(terminal) == 1
        assert (tmp_path / "j.jsonl").read_text() == journal_after_first

    def test_quarantined_job_raises_at_scope_boundary(self, tmp_path):
        from repro.experiments.common import multi_seed_search

        config = CampaignConfig(
            journal=tmp_path / "j.jsonl", retries=0, backoff_s=0.01
        )
        arch = toy_glb_architecture(6, 16)
        workload = GemmLayer("g64", 64, 64, 64).workload()
        with campaign_scope(config):
            with pytest.raises(CampaignError, match="quarantined"):
                multi_seed_search(
                    arch, workload, kind="pfm",
                    seeds=(1,), max_evaluations=40, patience=None,
                )


class TestHeartbeats:
    REQUIRED_KEYS = {"kind", "event", "job_id", "attempt", "time", "monotonic_s"}

    def test_heartbeats_written_with_required_keys(self, tmp_path):
        run_campaign([_job("a", 60)], journal_path=tmp_path / "j.jsonl")
        beats = [
            r
            for r in Journal(tmp_path / "j.jsonl").read()
            if r.get("kind") == "heartbeat"
        ]
        assert [b["event"] for b in beats] == ["start", "ok"]
        for beat in beats:
            assert self.REQUIRED_KEYS <= set(beat)
            assert beat["job_id"] == "a"
            assert beat["attempt"] == 0
            assert isinstance(beat["monotonic_s"], float)

    def test_retry_and_quarantine_heartbeats(self, tmp_path):
        plan = FaultPlan(
            [Fault("a", attempt, "raise", message="boom") for attempt in range(2)]
        )
        run_campaign(
            [_job("a", 60)],
            journal_path=tmp_path / "j.jsonl",
            retries=1,
            backoff_s=0.01,
            fault_plan=plan,
        )
        events = [
            r["event"]
            for r in Journal(tmp_path / "j.jsonl").read()
            if r.get("kind") == "heartbeat"
        ]
        assert events == ["start", "retry", "start", "quarantine"]

    def test_heartbeats_false_suppresses_records(self, tmp_path):
        run_campaign(
            [_job("a", 60)],
            journal_path=tmp_path / "j.jsonl",
            heartbeats=False,
        )
        kinds = {r.get("kind") for r in Journal(tmp_path / "j.jsonl").read()}
        assert "heartbeat" not in kinds

    def test_all_journal_records_carry_monotonic_s(self, tmp_path):
        plan = FaultPlan([Fault("a", 0, "raise", message="transient")])
        run_campaign(
            [_job("a", 60)],
            journal_path=tmp_path / "j.jsonl",
            retries=1,
            backoff_s=0.01,
            fault_plan=plan,
        )
        for record in Journal(tmp_path / "j.jsonl").read():
            assert "monotonic_s" in record, record["kind"]
            assert "time" in record

    def test_status_reports_counters_and_running(self, tmp_path):
        path = tmp_path / "j.jsonl"
        run_campaign([_job("a", 60), _job("b", 100)], journal_path=path)
        status = campaign_status(path)
        assert status["running"] == []
        assert status["counters"]["a"] == {"start": 1, "ok": 1}
        assert status["counters"]["b"] == {"start": 1, "ok": 1}

    def test_status_infers_running_from_start_surplus(self, tmp_path):
        """A started attempt with no failure/terminal record is in flight."""
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.append(
            {"kind": "campaign", "config": {}, "jobs": ["a", "b"]}
        )
        for job_id in ("a", "b"):
            journal.append(
                {
                    "kind": "heartbeat",
                    "event": "start",
                    "job_id": job_id,
                    "attempt": 0,
                    "time": 1.0,
                    "monotonic_s": 1.0,
                }
            )
        journal.append({"kind": "job", "job_id": "b", "status": "ok"})
        status = campaign_status(path)
        assert status["running"] == ["a"]
        assert "a" in status["pending"]

    def test_registry_counts_campaign_events(self, tmp_path):
        from repro.obs import MetricsRegistry, obs_scope

        registry = MetricsRegistry()
        with obs_scope(registry=registry):
            run_campaign([_job("a", 60)], journal_path=tmp_path / "j.jsonl")
        counter = registry.counter("campaign.events")
        assert counter.value(event="start") == 1.0
        assert counter.value(event="ok") == 1.0


class TestJournalIncremental:
    """Byte-offset tail reads powering `campaign status --follow`."""

    def test_growing_journal_consumed_in_pieces(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append({"kind": "campaign", "config": {}, "jobs": ["a"]})
        records, offset = journal.read_incremental(0)
        assert [r["kind"] for r in records] == ["campaign"]
        assert offset > 0

        # Nothing new: same offset back, no records re-read.
        again, same = journal.read_incremental(offset)
        assert again == []
        assert same == offset

        journal.append({"kind": "heartbeat", "event": "start", "job_id": "a"})
        journal.append({"kind": "job", "job_id": "a", "status": "ok"})
        fresh, advanced = journal.read_incremental(offset)
        assert [r["kind"] for r in fresh] == ["heartbeat", "job"]
        assert advanced > offset

    def test_missing_journal_returns_offset_unchanged(self, tmp_path):
        journal = Journal(tmp_path / "absent.jsonl")
        assert journal.read_incremental(17) == ([], 17)

    def test_torn_tail_left_for_next_poll(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.append({"kind": "job", "job_id": "a", "status": "ok"})
        with open(path, "a") as handle:
            handle.write('{"kind": "job", "job_id": "b", "sta')

        records, offset = journal.read_incremental(0)
        assert [r["job_id"] for r in records] == ["a"]
        # The torn line is unconsumed: polling again yields nothing yet.
        assert journal.read_incremental(offset) == ([], offset)

        with open(path, "a") as handle:
            handle.write('tus": "ok"}\n')
        completed, final = journal.read_incremental(offset)
        assert [r["job_id"] for r in completed] == ["b"]
        assert completed[0]["status"] == "ok"
        assert final > offset

    def test_complete_corrupt_line_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text("definitely not json\n")
        with pytest.raises(CampaignError, match="corrupt record"):
            Journal(path).read_incremental(0)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('\n{"kind": "job", "job_id": "a", "status": "ok"}\n\n')
        records, offset = Journal(path).read_incremental(0)
        assert len(records) == 1
        assert offset == path.stat().st_size


class TestCampaignStatusTracker:
    def test_follow_matches_full_status_as_journal_grows(self, tmp_path):
        from repro.search.campaign import CampaignStatusTracker

        path = tmp_path / "j.jsonl"
        jobs = [_job("a", 60), _job("b", 100)]
        run_campaign(jobs, journal_path=path, max_jobs=1)

        tracker = CampaignStatusTracker(path)
        partial = tracker.poll()
        assert partial == campaign_status(path)
        assert not partial["complete"]
        assert len(partial["ok"]) == 1

        # Re-polling a quiet journal folds nothing and stays identical.
        assert tracker.poll() == partial

        run_campaign(jobs, journal_path=path)
        final = tracker.poll()
        assert final == campaign_status(path)
        assert final["complete"]
        assert sorted(final["ok"]) == ["a", "b"]

    def test_poll_tolerates_torn_tail_then_consumes_it(self, tmp_path):
        from repro.search.campaign import CampaignStatusTracker

        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.append({"kind": "campaign", "config": {}, "jobs": ["a", "b"]})
        journal.append({"kind": "job", "job_id": "a", "status": "ok"})
        tracker = CampaignStatusTracker(path)
        assert tracker.poll()["ok"] == ["a"]

        with open(path, "a") as handle:
            handle.write('{"kind": "job", "job_id": "b", "sta')
        torn = tracker.poll()
        assert torn["ok"] == ["a"]
        assert "b" in torn["pending"]

        with open(path, "a") as handle:
            handle.write('tus": "ok"}\n')
        healed = tracker.poll()
        assert sorted(healed["ok"]) == ["a", "b"]
        assert healed["complete"]

    def test_poll_missing_journal_raises(self, tmp_path):
        from repro.search.campaign import CampaignStatusTracker

        tracker = CampaignStatusTracker(tmp_path / "absent.jsonl")
        with pytest.raises(CampaignError, match="no journal"):
            tracker.poll()

    def test_poll_empty_journal_raises_until_first_record(self, tmp_path):
        from repro.search.campaign import CampaignStatusTracker

        path = tmp_path / "j.jsonl"
        path.write_text("")
        tracker = CampaignStatusTracker(path)
        with pytest.raises(CampaignError, match="is empty"):
            tracker.poll()
        Journal(path).append(
            {"kind": "campaign", "config": {}, "jobs": ["a"]}
        )
        status = tracker.poll()
        assert status["total"] == 1
        assert status["pending"] == ["a"]

"""Unit tests for the experiment harnesses (tiny budgets — shape only).

The benchmarks assert the paper's claims at realistic budgets; these tests
only verify that every harness runs end to end, produces well-formed
results, and renders a report.
"""

import pytest

from repro.experiments import (
    format_fig7,
    format_fig8,
    format_fig9,
    format_fig10,
    format_fig11,
    format_fig13,
    format_table1,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig13,
    run_fig7_scenario,
    run_table1,
)
from repro.experiments.ablations import (
    format_sampler_ablation,
    format_search_ablation,
    run_sampler_ablation,
    run_search_ablation,
)
from repro.experiments.common import multi_seed_search, spawn_seeds
from repro.experiments.fig07 import SCENARIOS


class TestFig7Harness:
    def test_runs_and_formats(self):
        result = run_fig7_scenario(
            SCENARIOS["b"](), kinds=("pfm", "ruby-s"), evaluations=200, runs=1
        )
        assert set(result.series) == {"pfm", "ruby-s"}
        assert all(len(s) == 200 for s in result.series.values())
        text = format_fig7(result, checkpoints=(50, 200))
        assert "fig7b" in text and "ruby-s" in text

    def test_single_run_series_monotone_nonincreasing(self):
        # Per-run best-so-far curves are monotone; multi-run means need not
        # be (the averaging denominator grows as runs find their first
        # valid mapping), so check with runs=1.
        result = run_fig7_scenario(
            SCENARIOS["a"](), kinds=("pfm",), evaluations=300, runs=1
        )
        series = result.series["pfm"]
        finite = [v for v in series if v != float("inf")]
        assert all(a >= b for a, b in zip(finite, finite[1:]))

    def test_all_scenarios_constructible(self):
        for key, factory in SCENARIOS.items():
            scenario = factory()
            assert scenario.workload.total_operations > 0

    def test_chart_rendered(self):
        result = run_fig7_scenario(
            SCENARIOS["a"](), kinds=("pfm",), evaluations=100, runs=1
        )
        assert "best EDP vs evaluated mappings" in format_fig7(result)


class TestTable1Harness:
    def test_runs(self):
        result = run_table1(dimension_sizes=(3, 12))
        assert result.sizes == [3, 12]
        assert set(result.raw) == {"pfm", "ruby", "ruby-s", "ruby-t"}
        assert "Table I" in format_table1(result)

    def test_row_lookup(self):
        result = run_table1(dimension_sizes=(8,))
        row = result.row(8)
        assert row["pfm"] <= row["ruby-s"] <= row["ruby"]


class TestFig8Harness:
    def test_runs(self):
        result = run_fig8(sizes=(31, 32), seeds=(0,), max_evaluations=300)
        assert result.sizes == [31, 32]
        assert result.normalized("pfm", 32) >= 0.999
        assert "Fig. 8" in format_fig8(result)


class TestFig9Harness:
    def test_runs(self):
        result = run_fig9(seeds=(0,), max_evaluations=400, patience=150)
        assert result.handcrafted.valid
        assert "Fig. 9" in format_fig9(result)
        assert result.handcrafted.utilization == pytest.approx(135 / 168)


class TestFig10Fig11Harness:
    def test_fig10_tiny(self):
        result = run_fig10(
            representative=True, seeds=(0, 1), max_evaluations=1000,
            patience=400,
        )
        assert len(result.layers) > 5
        assert result.network_edp_ratio > 0
        assert "NETWORK" in format_fig10(result)

    def test_fig11_subset(self):
        result = run_fig11(
            seeds=(0,), max_evaluations=200, patience=80,
            subset=("db_vision_56x56", "db_gemm_ocr"),
        )
        assert len(result.comparisons) == 2
        assert "GEOMEAN" in format_fig11(result, chart=False)


class TestFig13Harness:
    def test_runs_small(self):
        result = run_fig13(
            suite="deepbench",
            shapes=((2, 7), (4, 7)),
            max_evaluations=200,
            patience=80,
        )
        assert len(result.sweep.points) == 4  # 2 shapes x 2 kinds
        improvements = result.improvements()
        assert set(improvements) == {"2x7", "4x7"}
        assert "Figs. 13/14" in format_fig13(result)

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError):
            run_fig13(suite="nope")


class TestAblationHarnesses:
    def test_sampler_ablation_runs(self):
        result = run_sampler_ablation(max_evaluations=200)
        assert result.structured.valid and result.uniform.valid
        assert "Ablation" in format_sampler_ablation(result)

    def test_search_ablation_runs(self):
        from repro.problem import GemmLayer

        result = run_search_ablation(
            population=10, generations=4,
            workload=GemmLayer("tiny", 24, 6, 8).workload(),
        )
        assert result.genetic.valid and result.random.valid
        assert result.genetic_evaluations == result.random_evaluations
        assert "Ablation" in format_search_ablation(result)


class TestCommonHelpers:
    def test_multi_seed_search_returns_best(self, toy_arch, vector100):
        best = multi_seed_search(
            toy_arch, vector100, "ruby-s", seeds=(0, 1),
            max_evaluations=200, patience=None,
        )
        assert best.valid

    def test_multi_seed_search_raises_when_impossible(self, vector100):
        from repro.arch import toy_glb_architecture
        from repro.exceptions import SearchError

        # A 2-word GLB cannot hold any tile of both tensors.
        impossible = toy_glb_architecture(num_pes=6, glb_bytes=4)
        with pytest.raises(SearchError):
            multi_seed_search(
                impossible, vector100, "pfm", seeds=(0,),
                max_evaluations=50, patience=None,
            )

    def test_spawn_seeds_deterministic(self):
        assert spawn_seeds(7, 3) == spawn_seeds(7, 3)
        assert spawn_seeds(7, 3) != spawn_seeds(8, 3)


class TestFig13PaddingPath:
    def test_padding_strategy_points_generated(self):
        result = run_fig13(
            suite="deepbench",
            shapes=((2, 7),),
            max_evaluations=200,
            patience=80,
            include_padding=True,
        )
        assert result.padded_sweep is not None
        assert len(result.padded_sweep.points) == 1
        point = result.padded_sweep.points[0]
        assert point.kind.value == "pfm"


class TestFig11Latency:
    def test_latency_variant_runs(self):
        from repro.experiments.fig11 import run_fig11_latency

        result = run_fig11_latency(
            seeds=(0,), max_evaluations=200, patience=80,
            subset=("db_vision_56x56", "db_gemm_ocr"),
        )
        assert len(result.comparisons) == 2
        assert result.geomean_cycles_ratio > 0

"""Unit tests for the architecture package (levels, spec, presets)."""

import pytest

from repro.arch import (
    Architecture,
    ComputeLevel,
    StorageLevel,
    eyeriss_like,
    simba_like,
    toy_glb_architecture,
    toy_linear_architecture,
)
from repro.exceptions import SpecError


class TestStorageLevel:
    def test_build_defaults(self):
        level = StorageLevel.build("L", capacity_words=64)
        assert level.fanout == 1
        assert level.keeps_tensor("anything")

    def test_keeps_restriction(self):
        level = StorageLevel.build("L", capacity_words=64, keeps={"Inputs"})
        assert level.keeps_tensor("Inputs")
        assert not level.keeps_tensor("Weights")

    def test_partitioned_capacity(self):
        level = StorageLevel.build(
            "L", per_tensor_capacity={"Inputs": 12, "Outputs": 16}
        )
        assert level.tensor_capacity("Inputs") == 12
        assert level.tensor_capacity("Weights") is None
        assert level.total_capacity_words == 28
        assert level.is_partitioned

    def test_rejects_partition_outside_keeps(self):
        with pytest.raises(SpecError):
            StorageLevel.build(
                "L", keeps={"Inputs"}, per_tensor_capacity={"Weights": 4}
            )

    def test_rejects_mismatched_mesh(self):
        with pytest.raises(SpecError):
            StorageLevel.build("L", fanout=10, fanout_x=3, fanout_y=4)

    def test_rejects_half_mesh(self):
        with pytest.raises(SpecError):
            StorageLevel.build("L", fanout=12, fanout_x=12)

    def test_rejects_zero_capacity(self):
        with pytest.raises(SpecError):
            StorageLevel.build("L", capacity_words=0)


class TestComputeLevel:
    def test_defaults(self):
        mac = ComputeLevel()
        assert mac.word_bits == 16
        assert mac.ops_per_cycle == 1

    def test_rejects_bad_width(self):
        with pytest.raises(SpecError):
            ComputeLevel(word_bits=0)


class TestArchitecture:
    def test_rejects_bounded_outermost(self):
        with pytest.raises(SpecError):
            Architecture(
                name="bad",
                levels=(StorageLevel.build("L0", capacity_words=4),),
            )

    def test_rejects_duplicate_level_names(self):
        with pytest.raises(SpecError):
            Architecture(
                name="bad",
                levels=(
                    StorageLevel.build("L"),
                    StorageLevel.build("L", capacity_words=4),
                ),
            )

    def test_level_lookup(self, eyeriss):
        assert eyeriss.level("GlobalBuffer").fanout == 168
        assert eyeriss.level_index("PEBuffer") == 2
        with pytest.raises(KeyError):
            eyeriss.level("nope")

    def test_total_compute_units(self, eyeriss):
        assert eyeriss.total_compute_units == 14 * 12

    def test_instances(self, eyeriss):
        assert eyeriss.instances_at(0) == 1
        assert eyeriss.instances_at(1) == 1
        assert eyeriss.instances_at(2) == 168

    def test_iter_inner_to_outer(self, eyeriss):
        names = [lvl.name for _, lvl in eyeriss.iter_levels_inner_to_outer()]
        assert names == ["PEBuffer", "GlobalBuffer", "DRAM"]

    def test_describe_mentions_levels(self, eyeriss):
        text = eyeriss.describe()
        assert "GlobalBuffer" in text and "fanout 168" in text

    def test_with_levels_replaces(self, eyeriss):
        new = eyeriss.with_levels(list(eyeriss.levels), name="copy")
        assert new.name == "copy"
        assert new.levels == eyeriss.levels


class TestPresets:
    def test_eyeriss_defaults(self):
        arch = eyeriss_like()
        assert arch.mesh_x == 14 and arch.mesh_y == 12
        glb = arch.level("GlobalBuffer")
        assert glb.capacity_words == 128 * 1024 * 8 // 16
        assert not glb.keeps_tensor("Weights")  # weights bypass the GLB
        pe = arch.level("PEBuffer")
        assert pe.tensor_capacity("Inputs") == 12
        assert pe.tensor_capacity("Outputs") == 16
        assert pe.tensor_capacity("Weights") == 224

    def test_eyeriss_sweep_shapes(self):
        small = eyeriss_like(2, 7)
        assert small.total_compute_units == 14
        big = eyeriss_like(16, 16)
        assert big.total_compute_units == 256

    def test_simba_defaults(self):
        arch = simba_like()
        assert arch.total_compute_units == 15 * 16
        glb = arch.level("GlobalBuffer")
        assert glb.spatial_dims == frozenset({"C", "M", "K"})

    def test_simba_nine_pe_config(self):
        arch = simba_like(num_pes=9, vector_macs_per_pe=3, vector_width=3)
        assert arch.total_compute_units == 81

    def test_toy_glb(self, toy_arch):
        assert toy_arch.level("GlobalBuffer").fanout == 6
        assert toy_arch.level("GlobalBuffer").capacity_words == 512

    def test_toy_linear(self, linear_arch9):
        assert linear_arch9.level("DRAM").fanout == 9
        assert linear_arch9.level("PEBuffer").capacity_words == 512

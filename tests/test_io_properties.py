"""Property-based round-trip tests for the JSON spec serialization,
plus journal-framing properties under concurrent writers.

The strategies live in :mod:`repro.verify.strategies` (shared with the
differential verification harness) — these tests only supply the
round-trip assertions.
"""

import multiprocessing
import os

from hypothesis import given, settings

from repro.io import (
    architecture_from_dict,
    architecture_to_dict,
    mapping_from_dict,
    mapping_to_dict,
    workload_from_dict,
    workload_to_dict,
)
from repro.verify.strategies import (
    conv_workloads,
    gemm_workloads,
    sampled_mappings,
    two_level_architectures,
)


class TestWorkloadRoundTripProperties:
    @given(workload=conv_workloads())
    @settings(max_examples=50, deadline=None)
    def test_conv_round_trip(self, workload):
        assert workload_from_dict(workload_to_dict(workload)) == workload

    @given(workload=gemm_workloads())
    @settings(max_examples=50, deadline=None)
    def test_gemm_round_trip(self, workload):
        assert workload_from_dict(workload_to_dict(workload)) == workload


class TestMappingRoundTripProperties:
    @given(mapping=sampled_mappings())
    @settings(max_examples=60, deadline=None)
    def test_sampled_mappings_round_trip(self, mapping):
        rebuilt = mapping_from_dict(mapping_to_dict(mapping))
        assert rebuilt == mapping
        assert rebuilt.canonical_key() == mapping.canonical_key()


class TestArchitectureRoundTripProperties:
    @given(arch=two_level_architectures())
    @settings(max_examples=50, deadline=None)
    def test_arbitrary_levels_round_trip(self, arch):
        assert architecture_from_dict(architecture_to_dict(arch)) == arch


def _journal_writer(path, writer_id, count):
    """Append ``count`` records with verifiable payloads (own process)."""
    from repro.io.journal import Journal

    journal = Journal(path)
    for n in range(count):
        # The filler makes records span well past typical pipe/stdio
        # buffer sizes so a non-atomic append WOULD interleave.
        journal.append(
            {
                "kind": "prop",
                "writer": writer_id,
                "n": n,
                "filler": f"w{writer_id}n{n}" * 64,
            }
        )


class TestJournalConcurrentReadIncremental:
    """``read_incremental`` under live concurrent writer processes.

    The journal's contract (relied on by the mapper service, whose worker
    threads and any sibling campaign process append to one file): a
    reader polling ``read_incremental`` while writers race must never see
    a partial record — every record parses, carries an intact payload,
    and arrives exactly once; a trailing line still in flight is simply
    deferred to a later poll.
    """

    WRITERS = 4
    RECORDS = 25

    def test_reader_never_sees_torn_records(self, tmp_path):
        from repro.io.journal import Journal

        path = tmp_path / "concurrent.jsonl"
        context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        writers = [
            context.Process(
                target=_journal_writer,
                args=(str(path), writer_id, self.RECORDS),
            )
            for writer_id in range(self.WRITERS)
        ]
        for process in writers:
            process.start()
        journal = Journal(path)
        seen = set()
        offset = 0
        try:
            # Poll hard WHILE the writers race — this is the property
            # under test, not the final state.
            while any(process.is_alive() for process in writers):
                records, offset = journal.read_incremental(offset)
                for record in records:
                    assert record["kind"] == "prop"
                    expected = (
                        f"w{record['writer']}n{record['n']}" * 64
                    )
                    assert record["filler"] == expected
                    key = (record["writer"], record["n"])
                    assert key not in seen, f"duplicate record {key}"
                    seen.add(key)
        finally:
            for process in writers:
                process.join(timeout=60)
        assert all(process.exitcode == 0 for process in writers)
        # Drain the tail: every record lands exactly once, none torn.
        records, offset = journal.read_incremental(offset)
        for record in records:
            seen.add((record["writer"], record["n"]))
        assert seen == {
            (writer, n)
            for writer in range(self.WRITERS)
            for n in range(self.RECORDS)
        }
        # Nothing left behind the final offset.
        assert os.path.getsize(path) == offset

"""Property-based round-trip tests for the JSON spec serialization.

The strategies live in :mod:`repro.verify.strategies` (shared with the
differential verification harness) — these tests only supply the
round-trip assertions.
"""

from hypothesis import given, settings

from repro.io import (
    architecture_from_dict,
    architecture_to_dict,
    mapping_from_dict,
    mapping_to_dict,
    workload_from_dict,
    workload_to_dict,
)
from repro.verify.strategies import (
    conv_workloads,
    gemm_workloads,
    sampled_mappings,
    two_level_architectures,
)


class TestWorkloadRoundTripProperties:
    @given(workload=conv_workloads())
    @settings(max_examples=50, deadline=None)
    def test_conv_round_trip(self, workload):
        assert workload_from_dict(workload_to_dict(workload)) == workload

    @given(workload=gemm_workloads())
    @settings(max_examples=50, deadline=None)
    def test_gemm_round_trip(self, workload):
        assert workload_from_dict(workload_to_dict(workload)) == workload


class TestMappingRoundTripProperties:
    @given(mapping=sampled_mappings())
    @settings(max_examples=60, deadline=None)
    def test_sampled_mappings_round_trip(self, mapping):
        rebuilt = mapping_from_dict(mapping_to_dict(mapping))
        assert rebuilt == mapping
        assert rebuilt.canonical_key() == mapping.canonical_key()


class TestArchitectureRoundTripProperties:
    @given(arch=two_level_architectures())
    @settings(max_examples=50, deadline=None)
    def test_arbitrary_levels_round_trip(self, arch):
        assert architecture_from_dict(architecture_to_dict(arch)) == arch

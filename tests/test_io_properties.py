"""Property-based round-trip tests for the JSON spec serialization."""

import random

from hypothesis import given, settings, strategies as st

from repro.arch import Architecture, StorageLevel
from repro.io import (
    architecture_from_dict,
    architecture_to_dict,
    mapping_from_dict,
    mapping_to_dict,
    workload_from_dict,
    workload_to_dict,
)
from repro.mapspace.generator import MapSpace, MapspaceKind
from repro.problem import ConvLayer, GemmLayer

dims = st.integers(min_value=1, max_value=64)
strides = st.integers(min_value=1, max_value=3)


class TestWorkloadRoundTripProperties:
    @given(c=dims, m=dims, p=dims, q=dims,
           r=st.integers(min_value=1, max_value=7),
           s=st.integers(min_value=1, max_value=7),
           stride=strides)
    @settings(max_examples=50, deadline=None)
    def test_conv_round_trip(self, c, m, p, q, r, s, stride):
        original = ConvLayer(
            "w", c=c, m=m, p=p, q=q, r=r, s=s,
            stride_h=stride, stride_w=stride,
        ).workload()
        rebuilt = workload_from_dict(workload_to_dict(original))
        assert rebuilt == original

    @given(m=dims, n=dims, k=dims)
    @settings(max_examples=50, deadline=None)
    def test_gemm_round_trip(self, m, n, k):
        original = GemmLayer("g", m, n, k).workload()
        assert workload_from_dict(workload_to_dict(original)) == original


class TestMappingRoundTripProperties:
    @given(
        kind=st.sampled_from(list(MapspaceKind)),
        m=dims, n=dims, k=dims,
        seed=st.integers(min_value=0, max_value=2**16),
        bypass=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_sampled_mappings_round_trip(self, kind, m, n, k, seed, bypass):
        from repro.arch import toy_glb_architecture

        arch = toy_glb_architecture(6, 4096)
        workload = GemmLayer("g", m, n, k).workload()
        space = MapSpace(arch, workload, kind, explore_bypass=bypass)
        mapping = space.sample(random.Random(seed))
        rebuilt = mapping_from_dict(mapping_to_dict(mapping))
        assert rebuilt == mapping
        assert rebuilt.canonical_key() == mapping.canonical_key()


class TestArchitectureRoundTripProperties:
    @given(
        capacity=st.integers(min_value=1, max_value=10**6),
        fanout_x=st.integers(min_value=1, max_value=32),
        fanout_y=st.integers(min_value=1, max_value=32),
        word_bits=st.sampled_from([8, 16, 32]),
        bandwidth=st.one_of(
            st.none(), st.floats(min_value=0.5, max_value=64.0)
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_arbitrary_levels_round_trip(
        self, capacity, fanout_x, fanout_y, word_bits, bandwidth
    ):
        arch = Architecture(
            name="prop",
            levels=(
                StorageLevel.build("DRAM", word_bits=word_bits),
                StorageLevel.build(
                    "L1",
                    capacity_words=capacity,
                    word_bits=word_bits,
                    fanout=fanout_x * fanout_y,
                    fanout_x=fanout_x,
                    fanout_y=fanout_y,
                    bandwidth_words_per_cycle=bandwidth,
                ),
            ),
        )
        assert architecture_from_dict(architecture_to_dict(arch)) == arch

"""Tests for the metamorphic invariant suite."""

import pytest

from repro.verify.invariants import (
    INVARIANTS,
    InvariantReport,
    check_cache_transparency,
    check_counting_consistency,
    check_pfm_containment,
    check_prune_parity,
    check_seed_determinism,
    run_invariants,
)


class TestIndividualInvariants:
    def test_pfm_containment_holds(self):
        checked, violations = check_pfm_containment(seed=0)
        assert checked > 0
        assert violations == []

    def test_counting_consistency_holds(self):
        checked, violations = check_counting_consistency(seed=0)
        assert checked > 0
        assert violations == []

    def test_cache_transparency_holds(self):
        checked, violations = check_cache_transparency(seed=0)
        assert checked > 0
        assert violations == []

    def test_prune_parity_holds(self):
        pytest.importorskip("numpy")
        checked, violations = check_prune_parity(seed=0)
        assert checked > 0
        assert violations == []

    def test_seed_determinism_covers_all_six_searchers(self):
        checked, violations = check_seed_determinism(seed=0)
        assert checked == 6
        assert violations == []

    @pytest.mark.parametrize("seed", [1, 2])
    def test_invariants_hold_across_seeds(self, seed):
        report = run_invariants(seed=seed, include_parallel=False)
        assert report.ok, report.summary()


class TestRunInvariants:
    def test_aggregates_every_invariant(self):
        report = run_invariants(seed=0, include_parallel=False)
        assert isinstance(report, InvariantReport)
        assert report.ok, report.summary()
        expected = {name for name, _ in INVARIANTS} - {
            "start-method-determinism"
        }
        assert set(report.checked) == expected
        assert all(count > 0 for count in report.checked.values())

    def test_only_filter(self):
        report = run_invariants(seed=0, only=["cache-transparency"])
        assert set(report.checked) == {"cache-transparency"}

    def test_summary_mentions_counts(self):
        report = run_invariants(seed=0, only=["counting-consistency"])
        text = report.summary()
        assert "counting-consistency" in text
        assert "violations=0" in text

    @pytest.mark.deep
    def test_start_method_determinism(self):
        # Spawns worker pools under both fork and spawn; slow, so deep.
        report = run_invariants(
            seed=0, only=["start-method-determinism"], include_parallel=True
        )
        assert report.ok, report.summary()
        assert report.checked.get("start-method-determinism", 0) >= 1

"""Unit tests for JSON serialization of specs."""

import pytest

from repro.arch import eyeriss_like, simba_like, toy_linear_architecture
from repro.exceptions import SpecError
from repro.io import (
    architecture_from_dict,
    architecture_to_dict,
    load_json,
    mapping_from_dict,
    mapping_to_dict,
    save_json,
    workload_from_dict,
    workload_to_dict,
)
from repro.mapping import Loop, Mapping
from repro.model import Evaluator
from repro.problem import ConvLayer, GemmLayer
from repro.zoo import alexnet_conv2_strip_mined


class TestWorkloadRoundTrip:
    def test_conv(self):
        original = ConvLayer("c", c=48, m=96, p=27, q=27, r=5, s=5,
                             stride_h=2, stride_w=2).workload()
        rebuilt = workload_from_dict(workload_to_dict(original))
        assert rebuilt == original

    def test_gemm(self):
        original = GemmLayer("g", 100, 100, 100).workload()
        rebuilt = workload_from_dict(workload_to_dict(original))
        assert rebuilt == original
        assert rebuilt.total_operations == original.total_operations

    def test_sliding_window_projection_survives(self):
        original = ConvLayer("c", p=10, r=3, stride_h=2).workload()
        rebuilt = workload_from_dict(workload_to_dict(original))
        assert rebuilt.tensor_size("Inputs") == original.tensor_size("Inputs")

    def test_wrong_kind_rejected(self):
        data = workload_to_dict(GemmLayer("g", 2, 2, 2).workload())
        data["kind"] = "architecture"
        with pytest.raises(SpecError):
            workload_from_dict(data)

    def test_wrong_schema_rejected(self):
        data = workload_to_dict(GemmLayer("g", 2, 2, 2).workload())
        data["schema"] = 99
        with pytest.raises(SpecError):
            workload_from_dict(data)


class TestArchitectureRoundTrip:
    @pytest.mark.parametrize(
        "arch_builder",
        [eyeriss_like, simba_like, lambda: toy_linear_architecture(9)],
    )
    def test_round_trip(self, arch_builder):
        original = arch_builder()
        rebuilt = architecture_from_dict(architecture_to_dict(original))
        assert rebuilt == original

    def test_partitioned_capacity_survives(self):
        rebuilt = architecture_from_dict(architecture_to_dict(eyeriss_like()))
        assert rebuilt.level("PEBuffer").tensor_capacity("Weights") == 224

    def test_keeps_survives(self):
        rebuilt = architecture_from_dict(architecture_to_dict(eyeriss_like()))
        assert not rebuilt.level("GlobalBuffer").keeps_tensor("Weights")


class TestMappingRoundTrip:
    def test_imperfect_mapping(self):
        original = alexnet_conv2_strip_mined(eyeriss_like())
        rebuilt = mapping_from_dict(mapping_to_dict(original))
        assert rebuilt == original
        assert rebuilt.has_imperfect_spatial()

    def test_rebuilt_mapping_evaluates_identically(self):
        arch = eyeriss_like()
        from repro.zoo import alexnet_conv2

        workload = alexnet_conv2()
        original = alexnet_conv2_strip_mined(arch)
        rebuilt = mapping_from_dict(mapping_to_dict(original))
        evaluator = Evaluator(arch, workload)
        a = evaluator.evaluate(original)
        b = evaluator.evaluate(rebuilt)
        assert a.edp == b.edp
        assert a.cycles == b.cycles

    def test_axis_survives(self):
        original = Mapping.from_blocks(
            [("DRAM", [], [Loop("C", 2, spatial=True, axis=1)])]
        )
        rebuilt = mapping_from_dict(mapping_to_dict(original))
        assert rebuilt.levels[0].spatial[0].axis == 1


class TestJsonFiles:
    def test_save_and_load(self, tmp_path):
        arch = eyeriss_like()
        path = tmp_path / "arch.json"
        save_json(architecture_to_dict(arch), path)
        rebuilt = architecture_from_dict(load_json(path))
        assert rebuilt == arch

    def test_file_is_pretty_printed(self, tmp_path):
        path = tmp_path / "w.json"
        save_json(workload_to_dict(GemmLayer("g", 2, 2, 2).workload()), path)
        text = path.read_text()
        assert text.count("\n") > 5


class TestAtomicWrites:
    def test_failed_replace_leaves_original_intact(self, tmp_path, monkeypatch):
        """A crash between temp-write and rename must not corrupt the target."""
        import os as os_module

        path = tmp_path / "data.json"
        save_json({"version": 1}, path)

        def explode(src, dst):
            raise OSError("simulated crash during rename")

        monkeypatch.setattr("repro.io.serde.os.replace", explode)
        with pytest.raises(OSError):
            save_json({"version": 2}, path)
        assert load_json(path) == {"version": 1}

    def test_no_temp_file_litter_after_failure(self, tmp_path, monkeypatch):
        path = tmp_path / "data.json"

        def explode(src, dst):
            raise OSError("simulated crash")

        monkeypatch.setattr("repro.io.serde.os.replace", explode)
        with pytest.raises(OSError):
            save_json({"x": 1}, path)
        assert list(tmp_path.iterdir()) == []

    def test_write_text_atomic_round_trip(self, tmp_path):
        from repro.io import write_text_atomic

        path = tmp_path / "nested" / "out.txt"
        path.parent.mkdir()
        write_text_atomic(path, "hello")
        write_text_atomic(path, "world")
        assert path.read_text() == "world"
        assert list(path.parent.iterdir()) == [path]

"""Unit tests for MapSpace sampling, assembly, and enumeration."""

import random

import pytest

from repro.mapping import is_valid_mapping
from repro.mapspace import (
    ConstraintSet,
    MapspaceKind,
    build_slots,
    make_mapspace,
    pfm_mapspace,
    ruby_mapspace,
    ruby_s_mapspace,
    ruby_t_mapspace,
)


class TestMapspaceKind:
    def test_flags(self):
        assert not MapspaceKind.PFM.spatial_imperfect
        assert not MapspaceKind.PFM.temporal_imperfect
        assert MapspaceKind.RUBY.spatial_imperfect
        assert MapspaceKind.RUBY.temporal_imperfect
        assert MapspaceKind.RUBY_S.spatial_imperfect
        assert not MapspaceKind.RUBY_S.temporal_imperfect
        assert not MapspaceKind.RUBY_T.spatial_imperfect
        assert MapspaceKind.RUBY_T.temporal_imperfect

    def test_from_string(self):
        assert MapspaceKind("ruby-s") is MapspaceKind.RUBY_S


class TestSampling:
    @pytest.mark.parametrize("kind", ["pfm", "ruby", "ruby-s", "ruby-t"])
    def test_samples_structurally_sound(self, toy_arch, vector100, kind):
        # Generated mappings always cover dims exactly and fit the fanout;
        # capacity violations are allowed (the mapspace includes invalid
        # mappings that the validity filter removes — the paper's step 2).
        from repro.mapping.validity import check_mapping

        space = make_mapspace(toy_arch, vector100, kind)
        rng = random.Random(0)
        some_valid = False
        for _ in range(100):
            mapping = space.sample(rng)
            violations = check_mapping(mapping, toy_arch, vector100)
            for violation in violations:
                assert "capacity" in violation or "partition" in violation, violation
            some_valid = some_valid or not violations
        assert some_valid

    def test_pfm_never_imperfect(self, toy_arch, vector100):
        space = pfm_mapspace(toy_arch, vector100)
        rng = random.Random(1)
        for _ in range(200):
            assert not space.sample(rng).has_imperfect_loops()

    def test_ruby_s_only_spatial_imperfect(self, toy_arch, vector100):
        space = ruby_s_mapspace(toy_arch, vector100)
        rng = random.Random(1)
        found = False
        for _ in range(200):
            mapping = space.sample(rng)
            assert not mapping.has_imperfect_temporal()
            found = found or mapping.has_imperfect_spatial()
        assert found

    def test_ruby_t_only_temporal_imperfect(self, toy_arch, vector100):
        space = ruby_t_mapspace(toy_arch, vector100)
        rng = random.Random(1)
        found = False
        for _ in range(200):
            mapping = space.sample(rng)
            assert not mapping.has_imperfect_spatial()
            found = found or mapping.has_imperfect_temporal()
        assert found

    def test_ruby_both_kinds_appear(self, toy_arch, vector100):
        space = ruby_mapspace(toy_arch, vector100)
        rng = random.Random(1)
        spatial = temporal = False
        for _ in range(300):
            mapping = space.sample(rng)
            spatial = spatial or mapping.has_imperfect_spatial()
            temporal = temporal or mapping.has_imperfect_temporal()
        assert spatial and temporal

    def test_reproducible_with_seed(self, toy_arch, vector100):
        space = ruby_s_mapspace(toy_arch, vector100)
        a = [m.canonical_key() for m in space.sample_many(20, random.Random(9))]
        b = [m.canonical_key() for m in space.sample_many(20, random.Random(9))]
        assert a == b

    def test_multi_dim_fanout_shared(self, eyeriss, small_conv):
        # Joint spatial allocation across all dims never exceeds the mesh.
        space = ruby_s_mapspace(eyeriss, small_conv)
        rng = random.Random(4)
        for _ in range(100):
            mapping = space.sample(rng)
            nest = mapping.level_nest("GlobalBuffer")
            assert nest.spatial_allocation_on_axis(0) <= 14
            assert nest.spatial_allocation_on_axis(1) <= 12

    def test_simba_spatial_dim_restriction_respected(self, simba, small_gemm):
        space = ruby_s_mapspace(simba, small_gemm)
        rng = random.Random(4)
        for _ in range(100):
            mapping = space.sample(rng)
            for nest in mapping.levels:
                for loop in nest.spatial:
                    if loop.bound > 1:
                        assert loop.dim in {"C", "M", "K"}


class TestConstraints:
    def test_spatial_dim_constraint(self, toy_arch, small_gemm):
        constraints = ConstraintSet.build(
            spatial_dims={"GlobalBuffer": {"M"}}
        )
        space = ruby_s_mapspace(toy_arch, small_gemm, constraints)
        rng = random.Random(2)
        for _ in range(100):
            mapping = space.sample(rng)
            for nest in mapping.levels:
                for loop in nest.spatial:
                    if loop.bound > 1:
                        assert loop.dim == "M"

    def test_max_spatial_cap(self, toy_arch, vector100):
        constraints = ConstraintSet.build(max_spatial={"GlobalBuffer": 3})
        space = ruby_s_mapspace(toy_arch, vector100, constraints)
        rng = random.Random(2)
        for _ in range(100):
            mapping = space.sample(rng)
            assert mapping.level_nest("GlobalBuffer").spatial_allocation <= 3

    def test_fixed_permutation(self, toy_arch, small_gemm):
        constraints = ConstraintSet.build(
            fixed_permutations={"GlobalBuffer": ("K", "M", "N")}
        )
        space = pfm_mapspace(toy_arch, small_gemm, constraints)
        rng = random.Random(2)
        for _ in range(50):
            mapping = space.sample(rng)
            dims = [l.dim for l in mapping.level_nest("GlobalBuffer").temporal]
            positions = {d: i for i, d in enumerate(dims)}
            ordered = [d for d in ("K", "M", "N") if d in positions]
            assert ordered == sorted(ordered, key=positions.get)

    def test_temporal_dim_constraint(self, toy_arch, small_gemm):
        constraints = ConstraintSet.build(
            temporal_dims={"GlobalBuffer": {"M"}}
        )
        space = pfm_mapspace(toy_arch, small_gemm, constraints)
        rng = random.Random(2)
        for _ in range(50):
            mapping = space.sample(rng)
            for loop in mapping.level_nest("GlobalBuffer").temporal:
                if loop.bound > 1:
                    assert loop.dim == "M"


class TestEnumeration:
    def test_enumeration_covers_sampling(self, linear_arch9, vector100):
        from repro.problem.gemm import vector_workload

        w = vector_workload("v20", 20)
        space = ruby_s_mapspace(linear_arch9, w)
        enumerated = {m.canonical_key() for m in space.enumerate_mappings()}
        rng = random.Random(0)
        for _ in range(300):
            assert space.sample(rng).canonical_key() in enumerated

    def test_limit_respected(self, linear_arch9, vector100):
        space = ruby_mapspace(linear_arch9, vector100)
        assert len(list(space.enumerate_mappings(limit=10))) == 10

    def test_enumerated_all_valid(self, linear_arch9):
        from repro.problem.gemm import vector_workload

        w = vector_workload("v12", 12)
        space = ruby_s_mapspace(linear_arch9, w)
        for mapping in space.enumerate_mappings():
            assert is_valid_mapping(mapping, linear_arch9, w)

    def test_permutations_expand(self, toy_arch, small_gemm):
        space = pfm_mapspace(toy_arch, small_gemm)
        plain = len(list(space.enumerate_mappings(limit=2000)))
        permuted = len(list(space.enumerate_mappings(limit=5000, permutations=True)))
        assert permuted > plain


class TestGenomeOps:
    def test_resample_dim_changes_only_that_dim(self, eyeriss, small_conv):
        space = ruby_s_mapspace(eyeriss, small_conv)
        rng = random.Random(0)
        chains = space.sample_chains(rng)
        updated = space.resample_dim(chains, "M", rng)
        for dim in chains:
            if dim != "M":
                assert updated[dim] is chains[dim]

    def test_remaining_budgets_nonnegative(self, eyeriss, small_conv):
        space = ruby_s_mapspace(eyeriss, small_conv)
        rng = random.Random(0)
        chains = space.sample_chains(rng)
        for budget in space.remaining_budgets(chains).values():
            assert budget >= 0

    def test_chains_within_fanout_holds_for_samples(self, eyeriss, small_conv):
        space = ruby_s_mapspace(eyeriss, small_conv)
        rng = random.Random(0)
        for _ in range(50):
            assert space.chains_within_fanout(space.sample_chains(rng))


class TestSlots:
    def test_eyeriss_has_two_spatial_slots(self, eyeriss):
        slots = build_slots(eyeriss)
        spatial = [s for s in slots if s.spatial]
        assert len(spatial) == 2
        assert {s.axis for s in spatial} == {0, 1}
        assert sorted(s.fanout_cap for s in spatial) == [12, 14]

    def test_linear_has_one_spatial_slot(self, linear_arch9):
        slots = build_slots(linear_arch9)
        spatial = [s for s in slots if s.spatial]
        assert len(spatial) == 1
        assert spatial[0].fanout_cap == 9

    def test_simba_two_fanouts(self, simba):
        slots = build_slots(simba)
        spatial = [s for s in slots if s.spatial]
        # GLB->PE (1D) plus the PE's 4x4 lane mesh (2D) = 3 spatial slots.
        assert len(spatial) == 3

    def test_slot_allows(self, eyeriss):
        constraints = ConstraintSet.build(
            spatial_dims={"GlobalBuffer": {"Q"}}
        )
        slots = build_slots(eyeriss, constraints)
        spatial = [s for s in slots if s.spatial]
        assert all(s.allows("Q") and not s.allows("P") for s in spatial)

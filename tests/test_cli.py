"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import _parse_shape, build_parser, main


class TestParseShape:
    def test_basic(self):
        assert _parse_shape("C=512,M=128") == {"C": 512, "M": 128}

    def test_lowercase_keys_normalized(self):
        assert _parse_shape("c=4") == {"C": 4}

    def test_rejects_missing_value(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_shape("C512")


class TestSearchCommand:
    def test_search_conv_prints_mapping(self, capsys):
        code = main(
            [
                "search",
                "--arch", "toy16",
                "--gemm", "M=32,N=8,K=16",
                "--kind", "ruby-s",
                "--budget", "400",
                "--patience", "150",
                "--seed", "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "compute()" in out
        assert "EDP=" in out
        assert "utilization=" in out

    def test_search_saves_and_reevaluates(self, tmp_path, capsys):
        mapping_path = tmp_path / "m.json"
        workload_path = tmp_path / "w.json"
        code = main(
            [
                "search",
                "--arch", "toy16",
                "--conv", "C=8,M=16,P=6,Q=6,R=3,S=3",
                "--budget", "400",
                "--patience", "150",
                "--seed", "1",
                "--save-mapping", str(mapping_path),
                "--save-workload", str(workload_path),
            ]
        )
        assert code == 0
        assert mapping_path.exists() and workload_path.exists()
        capsys.readouterr()

        code = main(
            [
                "evaluate",
                "--arch", "toy16",
                "--workload-json", str(workload_path),
                "--mapping", str(mapping_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "EDP=" in out
        assert "compute" in out  # energy breakdown row

    def test_evaluate_invalid_mapping_fails(self, tmp_path, capsys):
        from repro.io import save_json, mapping_to_dict, workload_to_dict
        from repro.mapping import Loop, Mapping
        from repro.problem.gemm import vector_workload

        bad = Mapping.from_blocks(
            [("DRAM", [Loop("D", 9)], []), ("PEBuffer", [], [])]
        )
        save_json(mapping_to_dict(bad), tmp_path / "m.json")
        save_json(workload_to_dict(vector_workload("v", 10)), tmp_path / "w.json")
        code = main(
            [
                "evaluate",
                "--arch", "toy16",
                "--workload-json", str(tmp_path / "w.json"),
                "--mapping", str(tmp_path / "m.json"),
            ]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "INVALID" in err

    def test_missing_workload_errors(self):
        with pytest.raises(SystemExit):
            main(["search", "--arch", "toy16"])


class TestExperimentCommand:
    def test_table1(self, capsys):
        code = main(["experiment", "table1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "ruby-s" in out

    def test_fig7_small_budget(self, capsys):
        code = main(["experiment", "fig7b", "--budget", "200", "--runs", "1"])
        assert code == 0
        assert "fig7b" in capsys.readouterr().out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_search_defaults(self):
        args = build_parser().parse_args(["search", "--gemm", "M=2,N=2,K=2"])
        assert args.kind == "ruby-s"
        assert args.objective == "edp"


class TestCampaignCommand:
    def _run_toy(self, tmp_path, extra=(), journal_name="j.jsonl"):
        journal = tmp_path / journal_name
        code = main(
            [
                "campaign", "run",
                "--suite", "toy",
                "--arch", "toy16",
                "--kinds", "ruby-s",
                "--seeds", "1",
                "--budget", "60",
                "--journal", str(journal),
                *extra,
            ]
        )
        return code, journal

    def test_run_then_status_then_resume(self, tmp_path, capsys):
        code, journal = self._run_toy(tmp_path)
        assert code == 0
        out = capsys.readouterr().out
        assert "7 ok, 0 quarantined" in out
        assert journal.exists()

        assert main(["campaign", "status", "--journal", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "7 total, 7 ok" in out
        assert "complete" in out

        assert main(["campaign", "resume", "--journal", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "7 resumed from journal" in out

    def test_rerun_replays_from_journal(self, tmp_path, capsys):
        self._run_toy(tmp_path)
        capsys.readouterr()
        code, _ = self._run_toy(tmp_path)
        assert code == 0
        assert "7 resumed from journal" in capsys.readouterr().out

    def test_fault_plan_quarantines_without_aborting(self, tmp_path, capsys):
        import json

        plan = {
            "schema": 1,
            "faults": [
                {"job": "toy:table1_d23:ruby-s", "attempt": a, "kind": "raise"}
                for a in range(3)
            ],
        }
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps(plan))
        code, _ = self._run_toy(
            tmp_path,
            extra=["--fault-plan", str(plan_path), "--backoff", "0.01"],
        )
        assert code == 0  # quarantine is not a campaign failure
        out = capsys.readouterr().out
        assert "1 quarantined" in out
        assert "QUARANTINED toy:table1_d23:ruby-s" in out

    def test_missing_journal_maps_to_exit_code(self, tmp_path, capsys):
        code = main(
            ["campaign", "status", "--journal", str(tmp_path / "nope.jsonl")]
        )
        assert code == 8  # CampaignError
        err = capsys.readouterr().err
        assert err.startswith("error (CampaignError):")
        assert "\n" == err[-1] and err.count("\n") == 1  # one line, no traceback

    def test_debug_flag_reraises(self, tmp_path):
        from repro.exceptions import CampaignError

        with pytest.raises(CampaignError):
            main(
                [
                    "--debug", "campaign", "status",
                    "--journal", str(tmp_path / "nope.jsonl"),
                ]
            )

    def test_resume_requires_suite_header(self, tmp_path, capsys):
        from repro.io.journal import Journal

        journal = tmp_path / "bare.jsonl"
        Journal(journal).append(
            {"kind": "campaign", "config": {}, "jobs": []}
        )
        code = main(["campaign", "resume", "--journal", str(journal)])
        assert code == 8
        assert "no suite config" in capsys.readouterr().err


class TestObsFlags:
    def test_search_with_trace_and_metrics_out(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        code = main(
            [
                "search",
                "--arch", "toy9",
                "--conv", "C=8,M=8,P=4",
                "--budget", "100",
                "--trace", str(trace),
                "--metrics-out", str(metrics),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"metrics saved to {metrics}" in out
        assert f"trace saved to {trace}" in out

        from repro.obs import read_trace, validate_span

        records = read_trace(trace)
        assert records
        assert all(validate_span(r) == [] for r in records)

        payload = json.loads(metrics.read_text())
        assert payload["schema"] == 1
        assert "search.evaluations" in payload["metrics"]["counters"]

    def test_obs_dump_and_summarize(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        code = main(
            [
                "search",
                "--arch", "toy9",
                "--conv", "C=8,M=8,P=4",
                "--budget", "100",
                "--trace", str(trace),
            ]
        )
        assert code == 0
        capsys.readouterr()

        assert main(["obs", "dump", str(trace)]) == 0
        out = capsys.readouterr().out
        assert '"kind": "span"' in out

        assert main(["obs", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "search.run" in out
        assert "span" in out  # header row

    def test_obs_summarize_empty_trace_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["obs", "summarize", str(empty)]) == 1
        assert "no span records" in capsys.readouterr().err


class TestCampaignStatusHeartbeats:
    def test_status_shows_heartbeat_counters(self, tmp_path, capsys):
        """In-flight jobs print their lifecycle counters inline."""
        from repro.io.journal import Journal

        journal = Journal(tmp_path / "j.jsonl")
        journal.append({"kind": "campaign", "config": {}, "jobs": ["a", "b"]})
        for job_id, attempt in (("a", 0), ("a", 1), ("b", 0)):
            journal.append(
                {
                    "kind": "heartbeat",
                    "event": "start",
                    "job_id": job_id,
                    "attempt": attempt,
                    "time": 1.0,
                    "monotonic_s": 1.0,
                }
            )
        journal.append(
            {
                "kind": "heartbeat",
                "event": "retry",
                "job_id": "a",
                "attempt": 0,
                "time": 1.0,
                "monotonic_s": 1.0,
            }
        )
        journal.append({"kind": "attempt", "job_id": "a", "attempt": 0})
        journal.append({"kind": "job", "job_id": "b", "status": "ok"})

        assert main(["campaign", "status", "--journal", str(journal.path)]) == 0
        out = capsys.readouterr().out
        assert "1 running" in out
        assert "running     a  [retry=1 start=2]" in out

    def test_status_follow_exits_when_complete(self, tmp_path, capsys):
        journal = tmp_path / "j.jsonl"
        main(
            [
                "campaign", "run",
                "--suite", "toy",
                "--arch", "toy16",
                "--kinds", "ruby-s",
                "--seeds", "1",
                "--budget", "60",
                "--journal", str(journal),
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "campaign", "status",
                "--journal", str(journal),
                "--follow",
                "--interval", "0.05",
            ]
        )
        assert code == 0
        assert "complete" in capsys.readouterr().out

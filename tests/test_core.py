"""Unit tests for the core package (mapper facade, metrics, reports)."""

import pytest

from repro.core import (
    Mapper,
    MapperConfig,
    find_best_mapping,
    format_table,
    geometric_mean,
    improvement_percent,
    normalize_to,
)
from repro.exceptions import SearchError


class TestMapper:
    def test_default_config_runs(self, toy_arch, vector100):
        mapper = Mapper(
            toy_arch,
            vector100,
            MapperConfig(max_evaluations=300, patience=100, seed=0),
        )
        result = mapper.run()
        assert result.best is not None

    def test_find_best_mapping_one_call(self, toy_arch, vector100):
        result = find_best_mapping(
            toy_arch, vector100, kind="ruby-s", seed=0, max_evaluations=300
        )
        assert result.best.valid
        assert result.objective == "edp"

    def test_seed_override(self, toy_arch, vector100):
        mapper = Mapper(
            toy_arch, vector100,
            MapperConfig(max_evaluations=200, patience=None, seed=1),
        )
        a = mapper.run(seed=5)
        mapper2 = Mapper(
            toy_arch, vector100,
            MapperConfig(max_evaluations=200, patience=None, seed=2),
        )
        b = mapper2.run(seed=5)
        assert a.best_metric == b.best_metric

    def test_exhaustive_strategy(self, toy_arch, vector100):
        result = find_best_mapping(
            toy_arch, vector100, kind="pfm", strategy="exhaustive"
        )
        assert result.terminated_by == "exhausted"

    def test_genetic_strategy(self, toy_arch, vector100):
        result = find_best_mapping(
            toy_arch, vector100, kind="ruby-s", strategy="genetic", seed=0
        )
        assert result.best is not None

    def test_annealing_strategy(self, toy_arch, vector100):
        result = find_best_mapping(
            toy_arch, vector100, kind="ruby-s", strategy="annealing",
            seed=0, max_evaluations=200,
        )
        assert result.best is not None and result.best.valid

    def test_unknown_strategy_rejected(self, toy_arch, vector100):
        with pytest.raises(SearchError):
            find_best_mapping(toy_arch, vector100, strategy="quantum")

    def test_ruby_s_at_least_as_good_as_pfm_exhaustive(self, toy_arch, vector100):
        # Ruby-S is a strict superset of PFM: its exhaustive optimum can
        # never be worse.
        pfm = find_best_mapping(toy_arch, vector100, kind="pfm",
                                strategy="exhaustive")
        ruby_s = find_best_mapping(toy_arch, vector100, kind="ruby-s",
                                   strategy="exhaustive")
        assert ruby_s.best_metric <= pfm.best_metric


class TestMetrics:
    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_geometric_mean_single(self):
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_geometric_mean_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_normalize_to(self):
        normalized = normalize_to({"pfm": 4.0, "ruby-s": 2.0}, "pfm")
        assert normalized == {"pfm": 1.0, "ruby-s": 0.5}

    def test_normalize_rejects_zero_baseline(self):
        with pytest.raises(ValueError):
            normalize_to({"pfm": 0.0}, "pfm")

    def test_improvement_percent(self):
        assert improvement_percent(100.0, 50.0) == pytest.approx(50.0)
        assert improvement_percent(100.0, 120.0) == pytest.approx(-20.0)


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        text = format_table(
            ["layer", "edp"], [["conv1", 1.5], ["conv2", 2.5]], title="T"
        )
        assert "T" in text
        assert "layer" in text and "conv1" in text

    def test_columns_aligned(self):
        text = format_table(["a", "long_header"], [["xxxxxx", 1]])
        lines = text.splitlines()
        assert len(lines[0]) == len(lines[1])

    def test_float_formatting(self):
        text = format_table(["v"], [[1.23456789]])
        assert "1.235" in text


class TestDseSweeps:
    def test_glb_sweep_produces_labeled_points(self):
        from repro.core import sweep_glb_sizes
        from repro.mapspace.constraints import eyeriss_row_stationary
        from repro.problem import ConvLayer

        workloads = [
            (ConvLayer("pw", c=64, m=64, p=14, q=14).workload(), 1),
        ]
        result = sweep_glb_sizes(
            workloads,
            glb_bytes_options=(32 * 1024, 128 * 1024),
            constraints=eyeriss_row_stationary(),
            max_evaluations=300,
            patience=100,
            seed=0,
        )
        assert len(result.points) == 4  # 2 sizes x 2 kinds
        labels = {p.shape_label for p in result.points}
        assert labels == {"glb32k", "glb128k"}
        # Bigger GLB -> bigger area.
        by_label = {}
        for p in result.points:
            by_label.setdefault(p.shape_label, p.area_mm2)
        assert by_label["glb128k"] > by_label["glb32k"]

    def test_glb_sweep_improvements_keyed_by_label(self):
        from repro.core import sweep_glb_sizes
        from repro.problem import GemmLayer

        workloads = [(GemmLayer("g", 96, 8, 64).workload(), 1)]
        result = sweep_glb_sizes(
            workloads,
            glb_bytes_options=(64 * 1024,),
            max_evaluations=300,
            patience=100,
            seed=1,
        )
        improvements = result.improvement_by_shape("ruby-s", "pfm")
        assert set(improvements) == {"glb64k"}

"""Unit tests for the observability layer (repro.obs).

Covers the metrics registry (counters, gauges, histograms, labels,
snapshot/reset/merge, exporters), the span tracer (nesting, JSONL
round-trips, validation, flame summaries), the ambient obs_scope, and
the shared SearchTimer.
"""

import json
import threading

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    SearchTimer,
    Tracer,
    active_obs,
    default_registry,
    flame_summary,
    obs_scope,
    read_trace,
    validate_span,
)
from repro.obs import scope as obs_scope_module


class TestCounter:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("search.evaluations")
        counter.inc()
        counter.inc(4)
        assert counter.value() == 5.0
        assert counter.total() == 5.0

    def test_labeled_series_are_independent(self):
        registry = MetricsRegistry()
        counter = registry.counter("search.evaluations")
        counter.inc(2, driver="random")
        counter.inc(3, driver="genetic")
        assert counter.value(driver="random") == 2.0
        assert counter.value(driver="genetic") == 3.0
        assert counter.value() == 0.0
        assert counter.total() == 5.0

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("x").inc(-1)

    def test_same_name_returns_same_family(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError):
            registry.gauge("a")


class TestGauge:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("search.best_metric")
        gauge.set(10.0)
        gauge.set(3.5)
        assert gauge.value() == 3.5

    def test_unset_series_is_none(self):
        registry = MetricsRegistry()
        assert registry.gauge("g").value(driver="x") is None


class TestHistogram:
    def test_observe_and_stats(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("run_seconds")
        histogram.observe(0.5)
        histogram.observe(1.5)
        stats = histogram.stats()
        assert stats["count"] == 2
        assert stats["sum"] == pytest.approx(2.0)
        assert stats["mean"] == pytest.approx(1.0)

    def test_default_buckets_are_sorted_and_log_spaced(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert DEFAULT_BUCKETS[0] == pytest.approx(1e-5)
        assert DEFAULT_BUCKETS[-1] == pytest.approx(100.0)

    def test_overflow_lands_in_inf_slot(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0, 2.0))
        histogram.observe(99.0)
        snapshot = registry.snapshot()["histograms"]["h"]["series"][""]
        assert snapshot["counts"] == [0, 0, 1]

    def test_unsorted_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(2.0, 1.0))


class TestSnapshotResetMerge:
    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2, driver="x")
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["c"] == {'{driver="x"}': 2.0}
        assert snapshot["gauges"]["g"] == {"": 1.5}
        assert snapshot["histograms"]["h"]["buckets"] == [1.0]
        assert snapshot["histograms"]["h"]["series"][""]["count"] == 1

    def test_snapshot_is_picklable_and_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(1, driver="a")
        registry.histogram("h").observe(0.01)
        text = json.dumps(registry.snapshot())
        assert "driver" in text

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_merge_adds_counters_and_histograms(self):
        child = MetricsRegistry()
        child.counter("c").inc(3, driver="w")
        child.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        parent = MetricsRegistry()
        parent.counter("c").inc(1, driver="w")
        parent.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        parent.merge(child.snapshot())
        assert parent.counter("c").value(driver="w") == 4.0
        stats = parent.histogram("h", buckets=(1.0, 2.0)).stats()
        assert stats["count"] == 2
        assert stats["sum"] == pytest.approx(2.0)

    def test_merge_gauge_last_write_wins(self):
        child = MetricsRegistry()
        child.gauge("g").set(7.0)
        parent = MetricsRegistry()
        parent.gauge("g").set(1.0)
        parent.merge(child.snapshot())
        assert parent.gauge("g").value() == 7.0

    def test_merge_rejects_differing_buckets(self):
        child = MetricsRegistry()
        child.histogram("h", buckets=(1.0,)).observe(0.5)
        parent = MetricsRegistry()
        parent.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        with pytest.raises(ValueError):
            parent.merge(child.snapshot())

    def test_merge_roundtrips_label_values(self):
        child = MetricsRegistry()
        child.counter("c").inc(2, driver="random", mode="batch")
        parent = MetricsRegistry()
        parent.merge(child.snapshot())
        assert parent.counter("c").value(driver="random", mode="batch") == 2.0


class TestExporters:
    def test_to_json_envelope(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        payload = registry.to_json()
        assert payload["schema"] == 1
        assert payload["metrics"]["counters"]["c"][""] == 1.0

    def test_prometheus_counter_total_suffix(self):
        registry = MetricsRegistry()
        registry.counter("search.evaluations").inc(5, driver="random")
        text = registry.to_prometheus()
        assert "# TYPE repro_search_evaluations_total counter" in text
        assert 'repro_search_evaluations_total{driver="random"} 5' in text

    def test_prometheus_histogram_cumulative_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0, 2.0))
        histogram.observe(0.5)
        histogram.observe(1.5)
        histogram.observe(9.0)
        text = registry.to_prometheus()
        assert 'repro_h_bucket{le="1.0"} 1' in text
        assert 'repro_h_bucket{le="2.0"} 2' in text
        assert 'repro_h_bucket{le="+Inf"} 3' in text
        assert "repro_h_count 3" in text

    def test_prometheus_empty_registry(self):
        assert MetricsRegistry().to_prometheus() == ""


class TestPrometheusExposition:
    """Exposition-format correctness: escaping, cumulative buckets,
    sum/count consistency (satellite: exposition tests)."""

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(1, driver='we"ird\\x', note="a\nb")
        text = registry.to_prometheus()
        assert 'driver="we\\"ird\\\\x"' in text
        assert 'note="a\\nb"' in text

    def test_escaped_label_values_roundtrip_through_merge(self):
        child = MetricsRegistry()
        labels = {"driver": 'x,"weird\\', "note": "line\nbreak"}
        child.counter("c").inc(3, **labels)
        child.gauge("g").set(1.5, **labels)
        parent = MetricsRegistry()
        parent.merge(child.snapshot())
        assert parent.counter("c").value(**labels) == 3.0
        assert parent.gauge("g").value(**labels) == 1.5

    def test_bucket_series_cumulative_monotone_ending_at_inf(self):
        import re

        from repro.obs import TIMING_BUCKETS

        registry = MetricsRegistry()
        histogram = registry.histogram(
            "span.duration_seconds", buckets=TIMING_BUCKETS
        )
        for value in (1e-7, 3e-6, 4e-5, 0.002, 0.7, 250.0):
            histogram.observe(value, name="s")
        text = registry.to_prometheus()
        bucket_counts = [
            int(match.group(2))
            for match in re.finditer(
                r'repro_span_duration_seconds_bucket\{name="s",'
                r'le="([^"]+)"\} (\d+)',
                text,
            )
        ]
        assert len(bucket_counts) == len(TIMING_BUCKETS) + 1
        assert bucket_counts == sorted(bucket_counts)
        assert 'le="+Inf"} 6' in text
        assert 'repro_span_duration_seconds_count{name="s"} 6' in text

    def test_sum_and_count_consistent(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0, 2.0))
        values = (0.25, 0.5, 1.5, 3.0)
        for value in values:
            histogram.observe(value)
        text = registry.to_prometheus()
        assert f"repro_h_count {len(values)}" in text
        assert f"repro_h_sum {sum(values)}" in text

    def test_timing_buckets_resolve_sub_10us_spans(self):
        # The finer grid exists so micro-spans do not collapse into one
        # bucket: distinct sub-10µs values must land in distinct buckets.
        from repro.obs import TIMING_BUCKETS

        assert TIMING_BUCKETS[0] < 1e-6
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=TIMING_BUCKETS)
        histogram.observe(2e-7)
        histogram.observe(2e-6)
        counts = registry.snapshot()["histograms"]["h"]["series"][""]["counts"]
        occupied = [i for i, count in enumerate(counts) if count]
        assert len(occupied) == 2


class TestTracer:
    def test_nested_spans_record_parentage(self):
        tracer = Tracer()
        with tracer.span("outer", driver="t"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.records
        assert inner["name"] == "inner"
        assert inner["parent_id"] == outer["span_id"]
        assert inner["depth"] == 1
        assert outer["parent_id"] is None
        assert outer["depth"] == 0
        assert outer["attrs"] == {"driver": "t"}
        assert outer["duration_s"] >= inner["duration_s"]

    def test_span_set_attaches_attrs(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            span.set(result="ok")
        assert tracer.records[0]["attrs"] == {"result": "ok"}

    def test_error_flag_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert tracer.records[0]["error"] is True

    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(path) as tracer:
            with tracer.span("outer"):
                with tracer.span("inner"):
                    pass
        records = read_trace(path)
        assert [r["name"] for r in records] == ["inner", "outer"]
        for record in records:
            assert validate_span(record) == []

    def test_read_trace_skips_foreign_records(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(path) as tracer:
            with tracer.span("s"):
                pass
        with open(path, "a") as handle:
            handle.write(json.dumps({"kind": "job", "job_id": "x"}) + "\n")
        assert [r["name"] for r in read_trace(path)] == ["s"]

    def test_read_trace_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(path) as tracer:
            with tracer.span("s"):
                pass
        with open(path, "a") as handle:
            handle.write('{"kind": "span", "trunc')
        assert [r["name"] for r in read_trace(path)] == ["s"]

    def test_close_is_idempotent(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl")
        tracer.close()
        tracer.close()


class TestValidateSpan:
    def test_complete_record_passes(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        assert validate_span(tracer.records[0]) == []

    def test_missing_keys_reported(self):
        problems = validate_span({"kind": "span"})
        assert any("missing key" in p for p in problems)

    def test_negative_duration_reported(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        record = dict(tracer.records[0], duration_s=-1.0)
        assert any("duration_s" in p for p in validate_span(record))

    def test_parentless_span_must_be_root(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        record = dict(tracer.records[0], depth=3)
        assert any("depth 0" in p for p in validate_span(record))


class TestFlameSummary:
    def test_groups_repeated_children(self):
        tracer = Tracer()
        with tracer.span("run"):
            for _ in range(3):
                with tracer.span("batch"):
                    pass
        text = flame_summary(tracer.records)
        assert "run" in text
        assert "batch" in text
        # The three batch spans collapse into one row with count 3.
        batch_line = next(l for l in text.splitlines() if "batch" in l)
        assert " 3 " in batch_line

    def test_empty_trace(self):
        assert flame_summary([]) == "(empty trace)"


class TestObsScope:
    def test_inactive_by_default(self):
        assert active_obs() is None

    def test_helpers_are_noops_when_inactive(self):
        obs_scope_module.inc("nope")
        obs_scope_module.set_gauge("nope", 1.0)
        obs_scope_module.observe("nope", 1.0)
        with obs_scope_module.trace("nope") as span:
            assert span is None

    def test_scope_routes_helpers(self):
        registry = MetricsRegistry()
        with obs_scope(registry=registry) as context:
            assert active_obs() is context
            obs_scope_module.inc("c", 2, driver="t")
            obs_scope_module.set_gauge("g", 5.0)
            obs_scope_module.observe("h", 0.5)
        assert active_obs() is None
        assert registry.counter("c").value(driver="t") == 2.0
        assert registry.gauge("g").value() == 5.0
        assert registry.histogram("h").stats()["count"] == 1

    def test_bare_scope_uses_default_registry(self):
        default_registry().reset()
        with obs_scope() as context:
            assert context.registry is default_registry()

    def test_scopes_nest_innermost_wins(self):
        outer_registry = MetricsRegistry()
        inner_registry = MetricsRegistry()
        with obs_scope(registry=outer_registry):
            with obs_scope(registry=inner_registry):
                obs_scope_module.inc("c")
            obs_scope_module.inc("c")
        assert inner_registry.counter("c").value() == 1.0
        assert outer_registry.counter("c").value() == 1.0

    def test_trace_path_owns_tracer(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with obs_scope(registry=MetricsRegistry(), trace_path=path):
            with obs_scope_module.trace("s", i=1) as span:
                assert span is not None
        records = read_trace(path)
        assert [r["name"] for r in records] == ["s"]

    def test_tracer_and_trace_path_mutually_exclusive(self, tmp_path):
        with pytest.raises(ValueError):
            with obs_scope(
                tracer=Tracer(), trace_path=tmp_path / "t.jsonl"
            ):
                pass  # pragma: no cover

    def test_scope_restores_previous_on_exception(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with obs_scope(registry=registry):
                raise RuntimeError("x")
        assert active_obs() is None

    def test_thread_safety_of_counters(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")

        def work():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == 4000.0


class _FakeCache:
    def __init__(self):
        self.hits = 10
        self.misses = 30
        self.max_entries = 100

    def __len__(self):
        return 40


class _FakeEvaluator:
    def __init__(self):
        self.cache = _FakeCache()


class TestSearchTimer:
    def test_payload_keys_without_cache(self):
        timer = SearchTimer(driver="t")
        with timer:
            pass
        stats = timer.stats(100)
        # "batch"/"bnb"/"progress" are always present (all-zero / empty on
        # runs that never touch them) so the SearchResult.stats schema is
        # uniform across every searcher.
        assert set(stats) == {
            "elapsed_s",
            "evals_per_sec",
            "batch",
            "bnb",
            "progress",
        }
        assert stats["elapsed_s"] >= 0.0
        assert stats["batch"]["candidates"] == 0
        assert stats["batch"]["prune_rate"] == 0.0
        assert stats["bnb"]["nodes_expanded"] == 0
        assert stats["progress"]["completed_units"] == 0

    def test_payload_reports_cache_deltas(self):
        evaluator = _FakeEvaluator()
        timer = SearchTimer(evaluator, driver="t")
        with timer:
            evaluator.cache.hits += 5
            evaluator.cache.misses += 15
        stats = timer.stats(20)
        assert stats["cache"]["hits"] == 5
        assert stats["cache"]["misses"] == 15
        assert stats["cache"]["hit_rate"] == pytest.approx(0.25)

    def test_publishes_into_ambient_registry(self):
        registry = MetricsRegistry()
        evaluator = _FakeEvaluator()
        with obs_scope(registry=registry):
            timer = SearchTimer(evaluator, driver="t")
            with timer:
                evaluator.cache.hits += 2
            timer.stats(50)
        assert registry.counter("search.runs").value(driver="t") == 1.0
        assert registry.counter("search.evaluations").value(driver="t") == 50.0
        assert registry.counter("cache.hits").value(driver="t") == 2.0
        assert (
            registry.histogram("search.run_seconds").stats(driver="t")["count"]
            == 1
        )

    def test_no_publish_when_inactive(self):
        timer = SearchTimer(driver="t")
        with timer:
            pass
        timer.stats(1)  # must not raise nor touch any registry

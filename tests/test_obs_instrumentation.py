"""Integration tests: searches and evaluators under an obs scope.

Verifies that the instrumentation layered into the evaluators and the
search drivers publishes spans and counters when a scope is active, stays
silent (and unchanged in output) when it is not, and that the
SearchResult.stats schema is identical across the scalar, cached,
batched, and parallel paths (satellite: schema stability).
"""

import pytest

from repro.mapspace import pfm_mapspace, ruby_s_mapspace
from repro.model import Evaluator
from repro.model.eval_cache import EvaluationCache
from repro.obs import MetricsRegistry, Tracer, obs_scope, read_trace
from repro.search import (
    GeneticSearch,
    SimulatedAnnealing,
    exhaustive_search,
    random_search,
)
from repro.search.parallel import parallel_random_search


def _span_names(tracer):
    return {record["name"] for record in tracer.records}


class TestSearchSpans:
    def test_random_search_emits_spans_and_counters(
        self, toy_arch, vector100, toy_evaluator
    ):
        space = pfm_mapspace(toy_arch, vector100)
        registry = MetricsRegistry()
        tracer = Tracer()
        with obs_scope(registry=registry, tracer=tracer):
            result = random_search(
                space, toy_evaluator, seed=0, max_evaluations=200
            )
        names = _span_names(tracer)
        assert "search.run" in names
        assert registry.counter("search.runs").value(driver="random") == 1.0
        assert (
            registry.counter("search.evaluations").value(driver="random")
            == result.num_evaluated
        )
        assert registry.counter("search.candidates").total() > 0
        assert registry.gauge("search.best_metric").value(
            driver="random"
        ) == pytest.approx(result.best_metric)

    def test_exhaustive_search_emits_spans(
        self, toy_arch, vector100, toy_evaluator
    ):
        space = pfm_mapspace(toy_arch, vector100)
        registry = MetricsRegistry()
        tracer = Tracer()
        with obs_scope(registry=registry, tracer=tracer):
            exhaustive_search(space, toy_evaluator)
        names = _span_names(tracer)
        assert "search.run" in names
        assert registry.counter("search.runs").value(driver="exhaustive") == 1.0

    def test_genetic_search_emits_generation_spans(
        self, toy_arch, vector100, toy_evaluator
    ):
        space = ruby_s_mapspace(toy_arch, vector100)
        registry = MetricsRegistry()
        tracer = Tracer()
        with obs_scope(registry=registry, tracer=tracer):
            GeneticSearch(
                space,
                toy_evaluator,
                seed=0,
                population_size=8,
                generations=3,
            ).run()
        names = _span_names(tracer)
        assert "search.run" in names
        assert "search.generation" in names
        assert registry.counter("search.runs").value(driver="genetic") == 1.0

    def test_annealing_emits_restart_spans_and_accept_counters(
        self, toy_arch, vector100, toy_evaluator
    ):
        space = ruby_s_mapspace(toy_arch, vector100)
        registry = MetricsRegistry()
        tracer = Tracer()
        with obs_scope(registry=registry, tracer=tracer):
            SimulatedAnnealing(
                space,
                toy_evaluator,
                seed=0,
                steps=75,
                restarts=2,
            ).run()
        names = _span_names(tracer)
        assert "search.run" in names
        assert "search.restart" in names
        assert registry.counter("search.runs").value(driver="annealing") == 1.0
        accepts = registry.counter("search.accepts").value(driver="annealing")
        rejects = registry.counter("search.rejects").value(driver="annealing")
        assert accepts + rejects > 0

    def test_evaluator_and_cache_counters(self, toy_arch, vector100):
        space = pfm_mapspace(toy_arch, vector100)
        evaluator = Evaluator(
            toy_arch, vector100, cache=EvaluationCache(max_entries=256)
        )
        registry = MetricsRegistry()
        with obs_scope(registry=registry):
            random_search(
                space,
                evaluator,
                seed=0,
                max_evaluations=200,
                use_batch=False,
            )
        assert registry.counter("evaluator.evals").total() > 0
        lookups = (
            registry.counter("evaluator.cache_hits").total()
            + registry.counter("evaluator.cache_misses").total()
        )
        assert lookups > 0

    def test_batch_engine_counters(self, toy_arch, vector100, toy_evaluator):
        space = pfm_mapspace(toy_arch, vector100)
        registry = MetricsRegistry()
        with obs_scope(registry=registry):
            result = random_search(
                space, toy_evaluator, seed=0, max_evaluations=200
            )
        if not result.stats["batch"]["candidates"]:
            pytest.skip("batch path unsupported for this mapspace")
        assert registry.counter("batch.batches").total() > 0
        assert (
            registry.counter("batch.candidates").total()
            == result.stats["batch"]["candidates"]
        )

    def test_no_registry_leak_when_inactive(
        self, toy_arch, vector100, toy_evaluator
    ):
        from repro.obs import default_registry

        default_registry().reset()
        space = pfm_mapspace(toy_arch, vector100)
        random_search(space, toy_evaluator, seed=0, max_evaluations=100)
        assert default_registry().names() == []


class TestParallelObs:
    def test_worker_snapshots_merge_into_ambient_registry(
        self, toy_arch, vector100
    ):
        registry = MetricsRegistry()
        with obs_scope(registry=registry):
            result = parallel_random_search(
                toy_arch,
                vector100,
                kind="pfm",
                workers=2,
                max_evaluations=100,
                patience=None,
                seed=7,
            )
        # The transient per-worker snapshot never reaches callers.
        assert "_obs_registry" not in result.stats
        # Worker-side counters (one search.run per worker) merged in,
        # plus the pool-level aggregate from the driver.
        assert registry.counter("search.runs").value(driver="random") == 2.0
        assert registry.counter("search.runs").value(driver="parallel") == 1.0
        assert (
            registry.counter("search.evaluations").value(driver="parallel")
            == result.num_evaluated
        )

    def test_no_snapshot_key_when_obs_inactive(self, toy_arch, vector100):
        result = parallel_random_search(
            toy_arch,
            vector100,
            kind="pfm",
            workers=2,
            max_evaluations=100,
            patience=None,
            seed=7,
        )
        assert "_obs_registry" not in result.stats


STATS_TOP_KEYS = {"elapsed_s", "evals_per_sec"}
CACHE_KEYS = {"hits", "misses", "hit_rate", "size", "max_entries"}
BATCH_KEYS = {"batches", "candidates", "pruned", "prune_rate", "fallback"}


class TestStatsSchemaStability:
    """SearchResult.stats keys are path-independent (satellite 4)."""

    def _check(self, stats, expect_cache, expect_batch):
        assert STATS_TOP_KEYS <= set(stats)
        if expect_cache:
            assert set(stats["cache"]) == CACHE_KEYS
        # The batch sub-dict is schema-uniform: always present with the
        # full key set; all-zero counters on paths the engine never ran.
        assert set(stats["batch"]) == BATCH_KEYS
        if expect_batch:
            assert stats["batch"]["candidates"] > 0
        else:
            assert stats["batch"]["candidates"] == 0

    @pytest.mark.parametrize("with_obs", [False, True])
    def test_schema_across_paths(self, toy_arch, vector100, with_obs):
        space = pfm_mapspace(toy_arch, vector100)

        def run_all():
            scalar = random_search(
                space,
                Evaluator(toy_arch, vector100),
                seed=0,
                max_evaluations=100,
                use_batch=False,
            )
            cached = random_search(
                space,
                Evaluator(
                    toy_arch,
                    vector100,
                    cache=EvaluationCache(max_entries=128),
                ),
                seed=0,
                max_evaluations=100,
                use_batch=False,
            )
            batched = random_search(
                space,
                Evaluator(toy_arch, vector100),
                seed=0,
                max_evaluations=100,
                use_batch=True,
            )
            pooled = parallel_random_search(
                toy_arch,
                vector100,
                kind="pfm",
                workers=2,
                max_evaluations=50,
                patience=None,
                seed=3,
            )
            return scalar, cached, batched, pooled

        if with_obs:
            with obs_scope(registry=MetricsRegistry()):
                scalar, cached, batched, pooled = run_all()
        else:
            scalar, cached, batched, pooled = run_all()

        self._check(scalar.stats, expect_cache=False, expect_batch=False)
        self._check(cached.stats, expect_cache=True, expect_batch=False)
        engine_ran = batched.stats["batch"]["candidates"] > 0
        self._check(
            batched.stats, expect_cache=False, expect_batch=engine_ran
        )
        pool_engine_ran = pooled.stats["batch"]["candidates"] > 0
        self._check(
            pooled.stats, expect_cache=True, expect_batch=pool_engine_ran
        )


class TestUniformStatsSchema:
    """All six searchers emit one top-level stats key set (satellite:
    schema uniformity, including the ``progress`` sub-dict)."""

    def test_six_searchers_identical_top_level_keys(self, toy_arch, vector100):
        from repro.obs import empty_bnb_stats, empty_progress_stats
        from repro.search.branch_bound import BranchBoundSearch
        from repro.search.pareto_search import ParetoSearch

        space = pfm_mapspace(toy_arch, vector100)

        def evaluator():
            return Evaluator(toy_arch, vector100)

        stats_by_driver = {
            "random": random_search(
                space, evaluator(), seed=0, max_evaluations=50
            ).stats,
            "exhaustive": exhaustive_search(space, evaluator()).stats,
            "genetic": GeneticSearch(
                space, evaluator(), population_size=8, generations=2, seed=0
            ).run().stats,
            "annealing": SimulatedAnnealing(
                space, evaluator(), steps=20, seed=0
            ).run().stats,
            "branch-bound": BranchBoundSearch(
                space, evaluator(), seed=0
            ).run().stats,
            "pareto": ParetoSearch(
                space, evaluator(), max_evaluations=50, seed=0
            ).run().stats,
        }
        baseline = set(stats_by_driver["random"])
        for driver, stats in stats_by_driver.items():
            assert set(stats) == baseline, driver
            assert set(stats["progress"]) == set(empty_progress_stats())
            assert set(stats["bnb"]) == set(empty_bnb_stats())
            assert stats["progress"]["completed_units"] > 0

    def test_empty_bnb_stats_matches_branch_bound_schema(self):
        from repro.obs import empty_bnb_stats
        from repro.search.branch_bound import _bnb_stats

        assert set(empty_bnb_stats()) == set(_bnb_stats())
        assert empty_bnb_stats() == _bnb_stats()


class TestTraceFileFromSearch:
    def test_trace_written_and_valid(self, tmp_path, toy_arch, vector100):
        from repro.obs import validate_span

        space = pfm_mapspace(toy_arch, vector100)
        path = tmp_path / "trace.jsonl"
        with obs_scope(registry=MetricsRegistry(), trace_path=path):
            random_search(
                space,
                Evaluator(toy_arch, vector100),
                seed=0,
                max_evaluations=100,
            )
        records = read_trace(path)
        assert records
        for record in records:
            assert validate_span(record) == []
        roots = [r for r in records if r["parent_id"] is None]
        assert any(r["name"] == "search.run" for r in roots)
        # Child spans cannot outlast their root.
        root = max(roots, key=lambda r: r["duration_s"])
        for record in records:
            assert record["duration_s"] <= root["duration_s"] + 1e-6

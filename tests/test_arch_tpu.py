"""Unit tests for the TPU-like preset and its systolic constraints."""

import pytest

from repro.arch.tpu import tpu_like, tpu_weight_stationary_constraints
from repro.core import find_best_mapping
from repro.problem import GemmLayer


class TestTpuPreset:
    def test_array_size(self):
        arch = tpu_like(array_dim=32)
        assert arch.total_compute_units == 32 * 32
        assert arch.level("UnifiedBuffer").fanout_x == 32

    def test_weights_bypass_unified_buffer(self):
        arch = tpu_like()
        unified = arch.level("UnifiedBuffer")
        assert not unified.keeps_tensor("Weights")
        assert not unified.keeps_tensor("B")
        assert unified.keeps_tensor("Inputs")

    def test_constraints_split_axes(self):
        constraints = tpu_weight_stationary_constraints()
        assert constraints.allowed_on_axis("UnifiedBuffer", 0) == {"M"}
        assert "K" in constraints.allowed_on_axis("UnifiedBuffer", 1)

    def test_prime_output_dim_leaves_array_idle_under_pfm(self):
        # M=97 (prime) on a 32-wide axis: perfect factors cannot unroll M
        # at all, so the M sweep is serial; Ruby-S packs the axis and
        # finishes M in ceil(97/32) = 4 passes.
        arch = tpu_like(array_dim=32)
        constraints = tpu_weight_stationary_constraints()
        workload = GemmLayer("g", m=97, n=24, k=96).workload()

        def best(kind, seed):
            return find_best_mapping(
                arch, workload, kind=kind, objective="delay", seed=seed,
                max_evaluations=1500, patience=500, constraints=constraints,
            ).best

        pfm = min((best("pfm", s) for s in (0, 1)), key=lambda e: e.cycles)
        ruby = min((best("ruby-s", s) for s in (0, 1)), key=lambda e: e.cycles)
        assert ruby.utilization > 3 * pfm.utilization
        assert ruby.cycles < pfm.cycles

    def test_mapping_search_finds_valid(self):
        arch = tpu_like(array_dim=16)
        workload = GemmLayer("g", m=48, n=8, k=32).workload()
        result = find_best_mapping(
            arch, workload, kind="ruby-s", seed=0,
            max_evaluations=800, patience=300,
            constraints=tpu_weight_stationary_constraints(),
        )
        assert result.best is not None and result.best.valid

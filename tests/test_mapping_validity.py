"""Unit tests for mapping validity checks."""

import pytest

from repro.exceptions import InvalidMappingError
from repro.mapping import Loop, Mapping, check_mapping, is_valid_mapping
from repro.mapping.validity import require_valid


def toy_mapping(glb_temporal, glb_spatial, pe_temporal=()):
    return Mapping.from_blocks(
        [
            ("DRAM", [], []),
            ("GlobalBuffer", list(glb_temporal), list(glb_spatial)),
            ("PERegister", list(pe_temporal), []),
        ]
    )


class TestStructure:
    def test_level_mismatch_detected(self, toy_arch, vector100):
        mapping = Mapping.from_blocks([("DRAM", [Loop("D", 100)], [])])
        violations = check_mapping(mapping, toy_arch, vector100)
        assert any("do not match" in v for v in violations)

    def test_wrong_order_detected(self, toy_arch, vector100):
        mapping = Mapping.from_blocks(
            [
                ("GlobalBuffer", [], []),
                ("DRAM", [Loop("D", 100)], []),
                ("PERegister", [], []),
            ]
        )
        assert not is_valid_mapping(mapping, toy_arch, vector100)


class TestCoverage:
    def test_exact_coverage_ok(self, toy_arch, vector100):
        mapping = toy_mapping([Loop("D", 20)], [Loop("D", 5, spatial=True)])
        assert is_valid_mapping(mapping, toy_arch, vector100)

    def test_imperfect_exact_coverage_ok(self, toy_arch, vector100):
        mapping = toy_mapping([Loop("D", 17)], [Loop("D", 6, 4, spatial=True)])
        assert is_valid_mapping(mapping, toy_arch, vector100)

    def test_overcoverage_rejected(self, toy_arch, vector100):
        mapping = toy_mapping([Loop("D", 17)], [Loop("D", 6, spatial=True)])
        violations = check_mapping(mapping, toy_arch, vector100)
        assert any("covers 102" in v for v in violations)

    def test_undercoverage_rejected(self, toy_arch, vector100):
        mapping = toy_mapping([Loop("D", 19)], [Loop("D", 5, spatial=True)])
        assert not is_valid_mapping(mapping, toy_arch, vector100)

    def test_unknown_dim_rejected(self, toy_arch, vector100):
        mapping = toy_mapping(
            [Loop("D", 20), Loop("Z", 2)], [Loop("D", 5, spatial=True)]
        )
        violations = check_mapping(mapping, toy_arch, vector100)
        assert any("unknown dim Z" in v for v in violations)

    def test_missing_dim_with_size_one_ok(self, eyeriss, small_conv):
        # N = 1 needs no loop anywhere.
        mapping = Mapping.from_blocks(
            [
                ("DRAM", [Loop(d, small_conv.size(d)) for d in "CMPQRS"], []),
                ("GlobalBuffer", [], []),
                ("PEBuffer", [], []),
            ]
        )
        assert is_valid_mapping(mapping, eyeriss, small_conv)


class TestFanout:
    def test_exceeding_fanout_rejected(self, toy_arch, vector100):
        mapping = toy_mapping([Loop("D", 10)], [Loop("D", 10, spatial=True)])
        violations = check_mapping(mapping, toy_arch, vector100)
        assert any("exceeds fanout" in v for v in violations)

    def test_per_axis_fanout_enforced(self, eyeriss, small_conv):
        # 16 > 14 on X even though 16 < 168 total.
        mapping = Mapping.from_blocks(
            [
                ("DRAM", [Loop(d, small_conv.size(d)) for d in "CPQRS"], []),
                ("GlobalBuffer", [], [Loop("M", 16, spatial=True, axis=0)]),
                ("PEBuffer", [], []),
            ]
        )
        violations = check_mapping(mapping, eyeriss, small_conv)
        assert any("axis X" in v for v in violations)

    def test_split_across_axes_ok(self, eyeriss, small_conv):
        mapping = Mapping.from_blocks(
            [
                ("DRAM", [Loop(d, small_conv.size(d)) for d in "CPQRS"], []),
                (
                    "GlobalBuffer",
                    [],
                    [
                        Loop("M", 8, spatial=True, axis=0),
                        Loop("M", 2, spatial=True, axis=1),
                    ],
                ),
                ("PEBuffer", [], []),
            ]
        )
        assert is_valid_mapping(mapping, eyeriss, small_conv)

    def test_restricted_spatial_dims(self, simba, small_gemm):
        # Simba allows only C/M/K spatially; N must stay temporal.
        mapping = Mapping.from_blocks(
            [
                ("DRAM", [Loop("M", 12), Loop("K", 8)], []),
                ("GlobalBuffer", [], [Loop("N", 10, spatial=True)]),
                ("PEBuffer", [], []),
            ]
        )
        violations = check_mapping(mapping, simba, small_gemm)
        assert any("not allowed" in v for v in violations)


class TestCapacity:
    def test_glb_capacity_enforced(self, toy_arch, vector100):
        # Keep the whole 100-element tensor in a GLB of 512 words: X + Y
        # tiles are 100 + 100 = 200 words -> fits. Shrink the GLB via the
        # tile by moving everything inside: still fits; instead blow it up
        # with an architecture holding only 64 words.
        from repro.arch import toy_glb_architecture

        tiny = toy_glb_architecture(num_pes=6, glb_bytes=128)  # 64 words
        mapping = toy_mapping([Loop("D", 20)], [Loop("D", 5, spatial=True)])
        violations = check_mapping(mapping, tiny, vector100)
        assert any("GlobalBuffer" in v and "capacity" in v for v in violations)

    def test_partitioned_capacity_enforced(self, eyeriss, small_conv):
        # 32 output channels at the PE overflows the 16-word psum spad.
        mapping = Mapping.from_blocks(
            [
                ("DRAM", [Loop(d, small_conv.size(d)) for d in "CPQRS"], []),
                ("GlobalBuffer", [], []),
                ("PEBuffer", [Loop("M", 16)], []),
            ]
        )
        assert is_valid_mapping(mapping, eyeriss, small_conv)
        overflow = Mapping.from_blocks(
            [
                ("DRAM", [Loop(d, small_conv.size(d)) for d in "CPQRS"], []),
                ("GlobalBuffer", [Loop("M", 1)], []),
                ("PEBuffer", [Loop("M", 16), Loop("Q", 6)], []),
            ]
        )
        violations = check_mapping(overflow, eyeriss, small_conv)
        assert any("Outputs" in v and "partition" in v for v in violations)

    def test_capacity_uses_max_tile_not_remainder(self, toy_arch, vector100):
        from repro.arch import toy_glb_architecture

        # GLB tile bound is 90 words per tensor (180 words total for X+Y);
        # a 160-word GLB only fits the remainder tiles (10+10 words), but
        # capacity must hold the largest (bound-sized) tile -> violation.
        arch = toy_glb_architecture(num_pes=6, glb_bytes=320)  # 160 words
        mapping = Mapping.from_blocks(
            [
                ("DRAM", [Loop("D", 2)], []),
                ("GlobalBuffer", [Loop("D", 90, 10)], []),
                ("PERegister", [], []),
            ]
        )
        violations = check_mapping(mapping, arch, vector100)
        assert any("capacity" in v for v in violations)

    def test_bypassed_tensor_not_counted(self, eyeriss):
        # Weights bypass the Eyeriss GLB: a weight tile larger than the GLB
        # is fine as long as inputs+outputs fit.
        from repro.problem import ConvLayer

        w = ConvLayer("big_weights", c=256, m=512, p=2, q=2, r=3, s=3).workload()
        mapping = Mapping.from_blocks(
            [
                ("DRAM", [], []),
                ("GlobalBuffer", [Loop("C", 256), Loop("M", 32)], []),
                ("PEBuffer", [Loop("M", 16), Loop("P", 2), Loop("Q", 2),
                              Loop("R", 3), Loop("S", 3)], []),
            ]
        )
        violations = check_mapping(mapping, eyeriss, w)
        assert not any("GlobalBuffer" in v for v in violations)


class TestRequireValid:
    def test_raises_with_details(self, toy_arch, vector100):
        mapping = toy_mapping([Loop("D", 19)], [Loop("D", 5, spatial=True)])
        with pytest.raises(InvalidMappingError, match="covers"):
            require_valid(mapping, toy_arch, vector100)

    def test_passes_silently(self, toy_arch, vector100):
        mapping = toy_mapping([Loop("D", 20)], [Loop("D", 5, spatial=True)])
        require_valid(mapping, toy_arch, vector100)

"""Unit tests for the sampler-mode switch (structured vs uniform)."""

import random

import pytest

from repro.exceptions import MapspaceError
from repro.mapspace import DimAllocator, build_slots
from repro.mapspace.generator import MapSpace, MapspaceKind


class TestSamplingModes:
    def test_unknown_mode_rejected(self, linear_arch9):
        slots = build_slots(linear_arch9)
        with pytest.raises(MapspaceError):
            DimAllocator(slots, True, True, sampling="magic")

    def test_uniform_mode_still_exact_coverage(self, linear_arch9):
        from repro.mapping import Loop, chain_trip_count

        slots = build_slots(linear_arch9)
        allocator = DimAllocator(slots, True, True, sampling="uniform")
        rng = random.Random(0)
        for size in (17, 100, 127):
            for _ in range(100):
                budgets = {
                    i: s.fanout_cap for i, s in enumerate(slots) if s.spatial
                }
                chain = allocator.sample_chain("D", size, rng, budgets)
                loops = [
                    Loop("D", b, r, spatial=s.spatial)
                    for b, r, s in zip(chain.bounds, chain.remainders, slots)
                ]
                assert chain_trip_count(loops) == size

    def test_structured_hits_cap_more_often(self, linear_arch9, vector100):
        """The structured sampler oversamples the full-fanout choice."""
        slots = build_slots(linear_arch9)
        spatial_offset = next(i for i, s in enumerate(slots) if s.spatial)

        def cap_rate(sampling: str) -> float:
            allocator = DimAllocator(slots, True, False, sampling=sampling)
            rng = random.Random(42)
            hits = 0
            trials = 500
            for _ in range(trials):
                budgets = {spatial_offset: 9}
                chain = allocator.sample_chain("D", 127, rng, budgets)
                if chain.bounds[spatial_offset] == 9:
                    hits += 1
            return hits / trials

        assert cap_rate("structured") > cap_rate("uniform") * 1.5

    def test_mapspace_accepts_sampling_kwarg(self, toy_arch, vector100):
        space = MapSpace(
            toy_arch, vector100, MapspaceKind.RUBY_S, sampling="uniform"
        )
        mapping = space.sample(random.Random(0))
        assert mapping is not None

    def test_mapspace_rejects_bad_sampling(self, toy_arch, vector100):
        with pytest.raises(MapspaceError):
            MapSpace(toy_arch, vector100, MapspaceKind.RUBY_S, sampling="nope")


class TestFlatMeshPreset:
    def test_flat_mesh_single_spatial_slot(self):
        from repro.arch import eyeriss_like

        flat = eyeriss_like(flat_mesh=True)
        slots = build_slots(flat)
        spatial = [s for s in slots if s.spatial]
        assert len(spatial) == 1
        assert spatial[0].fanout_cap == 168

    def test_flat_mesh_same_compute_units(self):
        from repro.arch import eyeriss_like

        assert (
            eyeriss_like(flat_mesh=True).total_compute_units
            == eyeriss_like().total_compute_units
        )

"""Cross-validation: analytical cost model vs the reference simulator.

The simulator executes mappings iteration by iteration (ground truth);
these tests assert the closed-form model in ``repro.model`` agrees with it
on MACs, cycles, coverage, and access counts — including for imperfect
mappings, where the remainder math is the paper's contribution.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import toy_glb_architecture, toy_linear_architecture
from repro.mapping import Loop, Mapping
from repro.model import Evaluator, compute_access_counts, compute_cycles
from repro.model.reference_sim import (
    SimulationTooLargeError,
    simulate,
)
from repro.mapspace.generator import MapSpace, MapspaceKind
from repro.problem import ConvLayer, GemmLayer
from repro.problem.gemm import vector_workload


def _has_relevant_spatial_remainder(mapping, tensor):
    """True if a spatial loop with a genuine remainder tiles a dim the
    tensor cares about.

    In that corner the analytical model is a documented *conservative*
    approximation: an instance that idles through a remainder window keeps
    its resident tile, so revisits of that tile are not refetches — the
    closed form counts them anyway (never undercounts). See the
    ``repro.model.access_counts`` module docstring.
    """
    relevant = tensor.relevant_dims
    return any(
        p.loop.spatial and not p.loop.is_perfect and p.loop.dim in relevant
        for p in mapping.placed_loops()
    )


def assert_counts_match(arch, workload, mapping, check_outputs=True):
    """Compare the analytical model against the simulator for one mapping."""
    sim = simulate(arch, workload, mapping)
    counts = compute_access_counts(arch, workload, mapping)
    cycles = compute_cycles(workload, mapping)

    assert sim.macs == workload.total_operations
    assert sim.cycles == cycles
    for dim, size in workload.dim_sizes.items():
        assert sim.coverage[dim] == size

    multi_dim = len(workload.dims) > 1
    for tensor in workload.tensors:
        if tensor.is_output and not check_outputs:
            continue
        approximate = multi_dim and _has_relevant_spatial_remainder(
            mapping, tensor
        )
        for level in range(len(arch.levels)):
            key = (level, tensor.name)
            for label, analytical, simulated in (
                ("reads", counts.reads.get(key, 0), sim.reads.get(key, 0)),
                ("writes", counts.writes.get(key, 0), sim.writes.get(key, 0)),
            ):
                if approximate:
                    # Conservative: never undercounts (never inflates the
                    # benefit of imperfect factorization), bounded slack.
                    assert analytical >= simulated, (
                        f"{label} undercount at {key}: sim {simulated} "
                        f"vs model {analytical}"
                    )
                    assert analytical <= max(simulated * 3.0, simulated + 12), (
                        f"{label} slack too large at {key}: sim {simulated} "
                        f"vs model {analytical}"
                    )
                else:
                    assert simulated == analytical, (
                        f"{label} mismatch at {key}: sim {simulated} "
                        f"vs model {analytical}"
                    )
    return sim


class TestPaperToyExample:
    def test_fig5_pfm(self, toy_arch, vector100):
        mapping = Mapping.from_blocks(
            [
                ("DRAM", [Loop("D", 1)], []),
                ("GlobalBuffer", [Loop("D", 20)], [Loop("D", 5, spatial=True)]),
                ("PERegister", [], []),
            ]
        )
        sim = assert_counts_match(toy_arch, vector100, mapping)
        assert sim.cycles == 20

    def test_fig5_ruby(self, toy_arch, vector100):
        mapping = Mapping.from_blocks(
            [
                ("DRAM", [Loop("D", 1)], []),
                ("GlobalBuffer", [Loop("D", 17)], [Loop("D", 6, 4, spatial=True)]),
                ("PERegister", [], []),
            ]
        )
        sim = assert_counts_match(toy_arch, vector100, mapping)
        assert sim.cycles == 17
        assert sim.utilization(6) == pytest.approx(100 / (17 * 6))


class TestHandBuiltGemm:
    def test_temporal_reuse_case(self, toy_arch):
        w = GemmLayer("g", m=4, n=3, k=2).workload()
        mapping = Mapping.from_blocks(
            [
                ("DRAM", [Loop("M", 4)], []),
                ("GlobalBuffer", [Loop("K", 2), Loop("N", 3)], []),
                ("PERegister", [], []),
            ]
        )
        assert_counts_match(toy_arch, w, mapping)

    def test_multicast_case(self, toy_arch):
        w = GemmLayer("g", m=4, n=3, k=2).workload()
        mapping = Mapping.from_blocks(
            [
                ("DRAM", [], []),
                ("GlobalBuffer", [Loop("K", 2)], [Loop("M", 4, spatial=True)]),
                ("PERegister", [Loop("N", 3)], []),
            ]
        )
        assert_counts_match(toy_arch, w, mapping)

    def test_imperfect_spatial_gemm(self, toy_arch):
        w = GemmLayer("g", m=7, n=3, k=2).workload()
        mapping = Mapping.from_blocks(
            [
                ("DRAM", [], []),
                (
                    "GlobalBuffer",
                    [Loop("K", 2), Loop("M", 2)],
                    [Loop("M", 4, 3, spatial=True)],
                ),
                ("PERegister", [Loop("N", 3)], []),
            ]
        )
        assert_counts_match(toy_arch, w, mapping)

    def test_conv_sliding_window(self, toy_arch):
        w = ConvLayer("c", c=2, m=2, p=4, q=1, r=3, s=1).workload()
        mapping = Mapping.from_blocks(
            [
                ("DRAM", [Loop("P", 2)], []),
                ("GlobalBuffer", [Loop("C", 2), Loop("P", 2)],
                 [Loop("M", 2, spatial=True)]),
                ("PERegister", [Loop("R", 3)], []),
            ]
        )
        assert_counts_match(toy_arch, w, mapping)


class TestRandomMappingsAgree:
    @pytest.mark.parametrize("kind", ["pfm", "ruby-s"])
    @pytest.mark.parametrize("size", [24, 60, 100, 127])
    def test_vector_workloads(self, kind, size):
        arch = toy_linear_architecture(9)
        workload = vector_workload(f"v{size}", size)
        space = MapSpace(arch, workload, MapspaceKind(kind))
        rng = random.Random(size)
        for _ in range(20):
            mapping = space.sample(rng)
            assert_counts_match(arch, workload, mapping)

    @pytest.mark.parametrize("kind", ["pfm", "ruby-s"])
    def test_small_gemm(self, kind, toy_arch):
        workload = GemmLayer("g", m=6, n=5, k=4).workload()
        space = MapSpace(toy_arch, workload, MapspaceKind(kind))
        rng = random.Random(7)
        for _ in range(15):
            mapping = space.sample(rng)
            assert_counts_match(toy_arch, workload, mapping)

    @pytest.mark.parametrize("kind", ["pfm", "ruby-s"])
    def test_small_conv(self, kind, toy_arch):
        workload = ConvLayer("c", c=3, m=4, p=5, q=2, r=2, s=2).workload()
        space = MapSpace(toy_arch, workload, MapspaceKind(kind))
        rng = random.Random(11)
        for _ in range(15):
            mapping = space.sample(rng)
            assert_counts_match(toy_arch, workload, mapping)


class TestHypothesisAgreement:
    @given(
        kind=st.sampled_from([MapspaceKind.PFM, MapspaceKind.RUBY_S]),
        m=st.integers(min_value=1, max_value=9),
        n=st.integers(min_value=1, max_value=9),
        k=st.integers(min_value=1, max_value=9),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_gemm_mappings(self, kind, m, n, k, seed):
        arch = toy_glb_architecture(num_pes=6, glb_bytes=8192)
        workload = GemmLayer("g", m, n, k).workload()
        space = MapSpace(arch, workload, kind)
        mapping = space.sample(random.Random(seed))
        assert_counts_match(arch, workload, mapping)


class TestSimulatorGuards:
    def test_too_large_rejected(self):
        arch = toy_linear_architecture(9)
        workload = vector_workload("big", 10_000)
        mapping = Mapping.from_blocks(
            [
                ("DRAM", [Loop("D", 10_000)], []),
                ("PEBuffer", [], []),
            ]
        )
        with pytest.raises(SimulationTooLargeError):
            simulate(arch, workload, mapping, max_points=100)

    def test_peak_tiles_within_bounds(self, toy_arch, vector100):
        mapping = Mapping.from_blocks(
            [
                ("DRAM", [Loop("D", 2)], []),
                ("GlobalBuffer", [Loop("D", 10)], [Loop("D", 5, spatial=True)]),
                ("PERegister", [], []),
            ]
        )
        sim = simulate(toy_arch, vector100, mapping)
        # GLB tile extent bound = 10 * 5 = 50 elements per tensor.
        assert sim.peak_tile_words[(1, "X")] == 50
        assert sim.peak_tile_words[(2, "X")] == 1

"""Unit tests for LevelNest and Mapping structure."""

import pytest

from repro.exceptions import SpecError
from repro.mapping import LevelNest, Loop, Mapping


def two_level_mapping():
    return Mapping.from_blocks(
        [
            ("DRAM", [Loop("D", 2)], []),
            ("GLB", [Loop("D", 10)], [Loop("D", 5, 3, spatial=True)]),
        ]
    )


class TestLevelNest:
    def test_rejects_spatial_loop_in_temporal_block(self):
        with pytest.raises(SpecError):
            LevelNest("L", temporal=(Loop("D", 2, spatial=True),))

    def test_rejects_temporal_loop_in_spatial_block(self):
        with pytest.raises(SpecError):
            LevelNest("L", spatial=(Loop("D", 2),))

    def test_spatial_allocation(self):
        nest = LevelNest(
            "L",
            spatial=(
                Loop("C", 3, spatial=True, axis=0),
                Loop("M", 4, spatial=True, axis=1),
            ),
        )
        assert nest.spatial_allocation == 12
        assert nest.spatial_allocation_on_axis(0) == 3
        assert nest.spatial_allocation_on_axis(1) == 4


class TestMapping:
    def test_placed_loops_order_and_positions(self):
        mapping = two_level_mapping()
        placed = mapping.placed_loops()
        assert [p.position for p in placed] == [0, 1, 2]
        assert [p.level_index for p in placed] == [0, 1, 1]
        assert placed[2].loop.spatial

    def test_loops_above_level(self):
        mapping = two_level_mapping()
        above_glb = mapping.loops_above_level(1)
        assert len(above_glb) == 1
        assert above_glb[0].loop.bound == 2

    def test_level_nest_lookup(self):
        mapping = two_level_mapping()
        assert mapping.level_nest("GLB").spatial_allocation == 5
        with pytest.raises(KeyError):
            mapping.level_nest("nope")

    def test_dims_used(self):
        mapping = Mapping.from_blocks(
            [("DRAM", [Loop("C", 2), Loop("M", 3)], [])]
        )
        assert mapping.dims_used == ("C", "M")

    def test_total_bound(self):
        mapping = two_level_mapping()
        assert mapping.total_bound("D") == 2 * 10 * 5

    def test_imperfection_queries(self):
        mapping = two_level_mapping()
        assert mapping.has_imperfect_loops()
        assert mapping.has_imperfect_spatial()
        assert not mapping.has_imperfect_temporal()

    def test_perfect_mapping_queries(self):
        mapping = Mapping.from_blocks([("DRAM", [Loop("D", 4)], [])])
        assert not mapping.has_imperfect_loops()

    def test_rejects_duplicate_level_names(self):
        with pytest.raises(SpecError):
            Mapping.from_blocks([("L", [], []), ("L", [], [])])

    def test_rejects_empty(self):
        with pytest.raises(SpecError):
            Mapping(levels=())

    def test_canonical_key_drops_trivial_loops(self):
        a = Mapping.from_blocks([("DRAM", [Loop("D", 4), Loop("C", 1)], [])])
        b = Mapping.from_blocks([("DRAM", [Loop("D", 4)], [])])
        assert a.canonical_key() == b.canonical_key()

    def test_canonical_key_spatial_order_insensitive(self):
        a = Mapping.from_blocks(
            [("DRAM", [], [Loop("C", 2, spatial=True), Loop("M", 3, spatial=True)])]
        )
        b = Mapping.from_blocks(
            [("DRAM", [], [Loop("M", 3, spatial=True), Loop("C", 2, spatial=True)])]
        )
        assert a.canonical_key() == b.canonical_key()

    def test_canonical_key_temporal_order_sensitive(self):
        a = Mapping.from_blocks([("DRAM", [Loop("C", 2), Loop("M", 3)], [])])
        b = Mapping.from_blocks([("DRAM", [Loop("M", 3), Loop("C", 2)], [])])
        assert a.canonical_key() != b.canonical_key()

    def test_canonical_key_distinguishes_axes(self):
        a = Mapping.from_blocks(
            [("DRAM", [], [Loop("C", 2, spatial=True, axis=0)])]
        )
        b = Mapping.from_blocks(
            [("DRAM", [], [Loop("C", 2, spatial=True, axis=1)])]
        )
        assert a.canonical_key() != b.canonical_key()

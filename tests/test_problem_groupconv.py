"""Unit tests for grouped convolution (and dilation coverage for conv)."""

import pytest

from repro.exceptions import SpecError
from repro.problem import ConvLayer
from repro.problem.groupconv import GroupConvLayer, group_conv_workload


class TestGroupConv:
    def test_group_dim_indexes_everything(self):
        w = GroupConvLayer("gc", g=2, c=48, m=128, p=27, q=27, r=5, s=5).workload()
        for tensor in w.tensors:
            assert "G" in tensor.relevant_dims

    def test_macs_scale_with_groups(self):
        one = GroupConvLayer("a", g=1, c=8, m=8, p=4, q=4, r=3, s=3).workload()
        two = GroupConvLayer("b", g=2, c=8, m=8, p=4, q=4, r=3, s=3).workload()
        assert two.total_operations == 2 * one.total_operations

    def test_grouped_macs_fraction_of_dense(self):
        # Grouping by G cuts MACs by G relative to the dense conv with the
        # same total channel counts.
        grouped = GroupConvLayer("g", g=2, c=24, m=64, p=13, q=13, r=3, s=3)
        dense = ConvLayer("d", c=48, m=128, p=13, q=13, r=3, s=3)
        assert (
            grouped.workload().total_operations * 2
            == dense.workload().total_operations
        )

    def test_alexnet_conv2_as_grouped(self):
        # AlexNet conv2 is 2 groups of C=48 -> M=128; the paper evaluates
        # the C=48 / M=96-class single-group shape. Totals line up.
        layer = GroupConvLayer("alexnet2", g=2, c=48, m=128, p=27, q=27,
                               r=5, s=5)
        assert layer.total_input_channels == 96
        assert layer.total_output_channels == 256

    def test_weight_size(self):
        layer = GroupConvLayer("gc", g=4, c=8, m=16, r=3, s=3)
        w = layer.workload()
        assert w.tensor_size("Weights") == 4 * 16 * 8 * 9

    def test_rejects_bad_shape(self):
        with pytest.raises(SpecError):
            GroupConvLayer("gc", g=0)

    def test_maps_end_to_end(self):
        from repro.arch import eyeriss_like
        from repro.core import find_best_mapping

        w = GroupConvLayer("gc", g=2, c=16, m=16, p=7, q=7, r=3, s=3).workload()
        result = find_best_mapping(
            eyeriss_like(), w, kind="ruby-s", seed=0,
            max_evaluations=500, patience=200,
        )
        assert result.best is not None and result.best.valid

    def test_simulator_agreement(self):
        import random

        from repro.arch import toy_glb_architecture
        from repro.mapspace.generator import MapSpace, MapspaceKind
        from tests.test_reference_sim import assert_counts_match

        arch = toy_glb_architecture(6, 8192)
        w = GroupConvLayer("gc", g=2, c=2, m=3, p=3, q=2, r=2, s=1).workload()
        space = MapSpace(arch, w, MapspaceKind.RUBY_S)
        rng = random.Random(1)
        for _ in range(8):
            assert_counts_match(arch, w, space.sample(rng))


class TestDilatedConv:
    def test_dilated_input_footprint(self):
        layer = ConvLayer("dil", c=1, m=1, p=8, q=8, r=3, s=3,
                          dilation_h=2, dilation_w=2)
        # H = (8-1)*1 + (3-1)*2 + 1 = 12
        assert layer.input_height == 12
        w = layer.workload()
        assert w.tensor_size("Inputs") == 12 * 12

    def test_dilated_conv_simulator_agreement(self):
        import random

        from repro.arch import toy_glb_architecture
        from repro.mapspace.generator import MapSpace, MapspaceKind
        from tests.test_reference_sim import assert_counts_match

        arch = toy_glb_architecture(6, 8192)
        w = ConvLayer("dil", c=2, m=2, p=4, q=2, r=3, s=1,
                      dilation_h=2).workload()
        space = MapSpace(arch, w, MapspaceKind.RUBY_S)
        rng = random.Random(2)
        for _ in range(8):
            assert_counts_match(arch, w, space.sample(rng))

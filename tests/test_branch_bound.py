"""Branch-and-bound mapper: prefix enumeration, bounds, and the search.

Three layers of guarantees, mirroring the construction:

* the prefix tree partitions the enumeration — per-prefix counts sum to
  the flat counts and the closed forms, and prefix batches reproduce the
  flat batch stream exactly;
* the partial-cost bounds are admissible — never above the true metric
  of any completion — and the vectorized paths (``child_bounds``,
  ``suffix_bounds``) agree with the scalar ``bound`` elementwise;
* the search itself returns the exhaustive optimum bit-for-bit, on
  every mapspace kind, deterministically per seed, with or without the
  batch engine.
"""

from __future__ import annotations

import itertools
import random

import numpy as np
import pytest

from repro.arch import eyeriss_like, toy_glb_architecture
from repro.exceptions import SearchError
from repro.mapspace import MapspaceKind
from repro.mapspace.constraints import eyeriss_row_stationary
from repro.mapspace.counting import count_mapspace_size
from repro.mapspace.factory import make_mapspace
from repro.model import Evaluator
from repro.model.batch import BatchEvaluator, PartialBoundEngine
from repro.problem import ConvLayer, GemmLayer
from repro.search import BranchBoundSearch, branch_bound_search
from repro.search.exhaustive import ExhaustiveSearch


def _toy():
    return toy_glb_architecture(num_pes=6, glb_bytes=1024)


def _bound_engine(space, evaluator):
    engine = BatchEvaluator(evaluator, layout=space.batch_layout())
    assert engine.supported, engine.unsupported_reason
    return PartialBoundEngine(engine, space.dim_chain_menus())


def _cell_metrics(space, evaluator, objective="edp"):
    """True metric per enumerated candidate, keyed by menu-index cell.

    The flat enumeration is the row-major product of the per-dim menus
    with jointly-infeasible combos skipped, so walking the index product
    in the same order aligns cells with batch rows one-to-one.
    """
    engine = BatchEvaluator(evaluator, layout=space.batch_layout())
    metrics = []
    for batch in space.iter_batches(batch_size=256):
        out = engine.evaluate_batch(batch, objective=objective, prune=False)
        for i in range(batch.size):
            metrics.append(
                float(out.metric[i]) if out.valid[i] else float("inf")
            )
    menus = space.dim_chain_menus()
    cells = []
    for combo_idx in itertools.product(
        *[range(len(menu)) for _, menu in menus]
    ):
        chains = {
            menus[d][0]: menus[d][1][k] for d, k in enumerate(combo_idx)
        }
        if space.prefix_feasible(chains):
            cells.append(combo_idx)
    assert len(cells) == len(metrics)
    return dict(zip(cells, metrics))


class TestPrefixEnumeration:
    @pytest.mark.parametrize("kind", list(MapspaceKind))
    def test_prefix_counts_partition_flat_count(self, vector100, kind):
        """Per-prefix counts sum to the flat count and the closed form."""
        arch = _toy()
        space = make_mapspace(arch, vector100, kind.value)
        flat = space.count_completions()
        assert flat == count_mapspace_size(
            arch, vector100, kind, count_valid=False
        ).raw
        for dim, menu in space.dim_chain_menus():
            by_prefix = sum(
                space.count_completions({dim: chain}) for chain in menu
            )
            assert by_prefix == flat

    def test_prefix_counts_partition_along_every_dim(self, small_gemm):
        """Multi-dim space: any dimension's menu partitions the count."""
        space = make_mapspace(_toy(), small_gemm, "pfm")
        flat = space.count_completions()
        assert flat > 0
        for dim, menu in space.dim_chain_menus():
            assert (
                sum(space.count_completions({dim: chain}) for chain in menu)
                == flat
            )
        # A two-dim prefix partitions one dim's sub-count the same way.
        (d0, menu0), (d1, menu1) = space.dim_chain_menus()[:2]
        for chain0 in menu0[:3]:
            assert space.count_completions({d0: chain0}) == sum(
                space.count_completions({d0: chain0, d1: chain1})
                for chain1 in menu1
            )

    def test_batch_counts_match_prefix_counts(self, small_gemm):
        space = make_mapspace(_toy(), small_gemm, "pfm")
        dim, menu = space.dim_chain_menus()[0]
        for chain in menu[:4]:
            batched = sum(
                batch.size
                for batch in space.iter_batches(
                    batch_size=64, prefix={dim: chain}
                )
            )
            assert batched == space.count_completions({dim: chain})

    def test_prefix_batches_reproduce_flat_stream(self, small_gemm):
        """Concatenating one dim's prefix batches equals the flat stream."""
        space = make_mapspace(_toy(), small_gemm, "pfm")
        dim, menu = space.dim_chain_menus()[0]

        def stacked(batches):
            batches = list(batches)
            bounds = np.concatenate([b.bounds for b in batches])
            rems = np.concatenate([b.rems for b in batches])
            return bounds, rems

        flat_bounds, flat_rems = stacked(space.iter_batches(batch_size=128))
        pref_bounds, pref_rems = stacked(
            space.iter_prefix_batches(
                [{dim: chain} for chain in menu], batch_size=128
            )
        )
        assert np.array_equal(flat_bounds, pref_bounds)
        assert np.array_equal(flat_rems, pref_rems)

    def test_infeasible_prefix_counts_zero(self, small_gemm):
        space = make_mapspace(_toy(), small_gemm, "pfm")
        menus = space.dim_chain_menus()
        full = {dim: menu[0] for dim, menu in menus}
        if space.prefix_feasible(full):
            assert space.count_completions(full) == 1
        else:
            assert space.count_completions(full) == 0


class TestBoundAdmissibility:
    CASES = [
        ("toy-gemm-pfm", "toy"),
        ("toy-v100-ruby-s", "toy"),
        ("eyeriss-conv-pfm", "eyeriss"),
    ]

    def _setup(self, case, vector100, small_gemm):
        if case == "toy-gemm-pfm":
            arch = _toy()
            return arch, small_gemm, make_mapspace(arch, small_gemm, "pfm")
        if case == "toy-v100-ruby-s":
            arch = _toy()
            return arch, vector100, make_mapspace(arch, vector100, "ruby-s")
        # Adversarial: a conv with genuine R/S coefficient ranks, under
        # the row-stationary constraint set (sliding-window reuse is the
        # hard case for the projection-multiplier bound).
        arch = eyeriss_like()
        workload = ConvLayer(
            "tiny", c=2, m=2, p=3, q=3, r=3, s=3
        ).workload()
        return arch, workload, make_mapspace(
            arch, workload, "pfm", eyeriss_row_stationary()
        )

    @pytest.mark.parametrize("case", [c for c, _ in CASES])
    def test_full_assignment_bound_below_true_metric(
        self, case, vector100, small_gemm
    ):
        """The tightest bound (all dims pinned) never exceeds the truth."""
        arch, workload, space = self._setup(case, vector100, small_gemm)
        evaluator = Evaluator(arch, workload)
        be = _bound_engine(space, evaluator)
        metrics = _cell_metrics(space, evaluator)
        for cell, metric in metrics.items():
            if metric == float("inf"):
                continue
            assigned = {
                dim: k
                for (dim, _), k in zip(space.dim_chain_menus(), cell)
            }
            assert be.bound(assigned) <= metric * (1 + 1e-9)

    @pytest.mark.parametrize("case", [c for c, _ in CASES])
    def test_partial_bounds_admissible_on_random_prefixes(
        self, case, vector100, small_gemm
    ):
        """bound(prefix) <= min true metric over the prefix's completions."""
        arch, workload, space = self._setup(case, vector100, small_gemm)
        evaluator = Evaluator(arch, workload)
        be = _bound_engine(space, evaluator)
        metrics = _cell_metrics(space, evaluator)
        menus = space.dim_chain_menus()
        dims = [dim for dim, _ in menus]
        rng = random.Random(7)
        for _ in range(40):
            chosen = rng.sample(dims, rng.randrange(len(dims) + 1))
            assigned = {
                dim: rng.randrange(len(dict(menus)[dim]))
                for dim in chosen
            }
            completions = [
                metric
                for cell, metric in metrics.items()
                if all(
                    cell[d] == assigned[dim]
                    for d, dim in enumerate(dims)
                    if dim in assigned
                )
            ]
            finite = [m for m in completions if m != float("inf")]
            if not finite:
                continue
            for objective in ("edp", "energy", "delay"):
                true_min = min(
                    m
                    for cell, m in metrics.items()
                    if all(
                        cell[d] == assigned[dim]
                        for d, dim in enumerate(dims)
                        if dim in assigned
                    )
                ) if objective == "edp" else None
                bound = be.bound(assigned, objective)
                if objective == "edp":
                    assert bound <= true_min * (1 + 1e-9)
                else:
                    assert bound >= 0

    @pytest.mark.parametrize("case", [c for c, _ in CASES])
    def test_vectorized_bounds_match_scalar(
        self, case, vector100, small_gemm
    ):
        """child_bounds and suffix_bounds equal the scalar bound per cell."""
        arch, workload, space = self._setup(case, vector100, small_gemm)
        be = _bound_engine(space, Evaluator(arch, workload))
        menus = dict(space.dim_chain_menus())
        dims = list(be.layout.dims)
        rng = random.Random(3)
        for _ in range(12):
            chosen = rng.sample(dims, rng.randrange(len(dims)))
            assigned = {d: rng.randrange(len(menus[d])) for d in chosen}
            free = [d for d in dims if d not in assigned]
            for objective in ("edp", "energy", "delay"):
                if free:
                    branch = rng.choice(free)
                    vec = be.child_bounds(assigned, branch, objective)
                    for idx in range(len(menus[branch])):
                        scalar = be.bound(
                            {**assigned, branch: idx}, objective
                        )
                        assert float(vec[idx]) == pytest.approx(
                            scalar, rel=1e-12
                        )
                grid = be.suffix_bounds(assigned, objective)
                assert grid.shape == tuple(len(menus[d]) for d in free)
                probe = [0] * len(free)
                full = dict(assigned)
                for d, i in zip(free, probe):
                    full[d] = i
                assert float(grid[tuple(probe)]) == pytest.approx(
                    be.bound(full, objective), rel=1e-12
                )

    def test_bound_monotone_under_assignment(self, small_gemm):
        """Assigning a dim never loosens the bound (tree monotonicity)."""
        arch = _toy()
        space = make_mapspace(arch, small_gemm, "pfm")
        be = _bound_engine(space, Evaluator(arch, small_gemm))
        menus = dict(space.dim_chain_menus())
        dims = list(be.layout.dims)
        rng = random.Random(11)
        for _ in range(30):
            chosen = rng.sample(dims, rng.randrange(len(dims)))
            assigned = {d: rng.randrange(len(menus[d])) for d in chosen}
            parent = be.bound(assigned)
            free = [d for d in dims if d not in assigned]
            if not free:
                continue
            branch = rng.choice(free)
            child = min(
                be.bound({**assigned, branch: idx})
                for idx in range(len(menus[branch]))
            )
            assert child >= parent * (1 - 1e-12)


class TestBranchBoundSearch:
    @pytest.mark.parametrize("kind", ["pfm", "ruby-s"])
    def test_matches_exhaustive_on_toy(
        self, toy_arch, vector100, toy_evaluator, kind
    ):
        space = make_mapspace(toy_arch, vector100, kind)
        exact = ExhaustiveSearch(space, toy_evaluator).run()
        pruned = BranchBoundSearch(
            make_mapspace(toy_arch, vector100, kind),
            Evaluator(toy_arch, vector100),
            seed=0,
        ).run()
        assert pruned.best_metric == exact.best_metric

    def test_matches_exhaustive_on_eyeriss_gemm(self):
        arch = eyeriss_like()
        workload = GemmLayer("g8x4x4", m=8, n=4, k=4).workload()
        exact = ExhaustiveSearch(
            make_mapspace(arch, workload, "pfm"), Evaluator(arch, workload)
        ).run()
        pruned = branch_bound_search(
            make_mapspace(arch, workload, "pfm"),
            Evaluator(arch, workload),
            seed=5,
        )
        assert pruned.best_metric == exact.best_metric

    def test_seed_deterministic(self, toy_arch, vector100):
        def run():
            return BranchBoundSearch(
                make_mapspace(toy_arch, vector100, "pfm"),
                Evaluator(toy_arch, vector100),
                seed=42,
            ).run()

        a, b = run(), run()
        assert a.best_metric == b.best_metric
        assert a.num_evaluated == b.num_evaluated
        assert a.best.mapping.signature() == b.best.mapping.signature()
        assert a.stats["bnb"] == b.stats["bnb"]

    def test_leaf_width_does_not_change_optimum(self, toy_arch, small_gemm):
        metrics = set()
        for leaf_width in (1, 8, 512, 100_000):
            result = BranchBoundSearch(
                make_mapspace(toy_arch, small_gemm, "pfm"),
                Evaluator(toy_arch, small_gemm),
                seed=2,
                leaf_width=leaf_width,
            ).run()
            metrics.add(result.best_metric)
        assert len(metrics) == 1

    def test_scalar_fallback_same_optimum_and_schema(
        self, toy_arch, vector100
    ):
        batched = BranchBoundSearch(
            make_mapspace(toy_arch, vector100, "pfm"),
            Evaluator(toy_arch, vector100),
            seed=0,
        ).run()
        fallback = BranchBoundSearch(
            make_mapspace(toy_arch, vector100, "pfm"),
            Evaluator(toy_arch, vector100),
            seed=0,
            use_batch=False,
        ).run()
        assert fallback.best_metric == batched.best_metric
        assert set(fallback.stats["bnb"]) == set(batched.stats["bnb"])
        assert fallback.stats["bnb"]["subtrees_pruned"] == 0
        assert fallback.stats["batch"]["candidates"] == 0

    def test_stats_schema(self, toy_arch, vector100):
        result = BranchBoundSearch(
            make_mapspace(toy_arch, vector100, "pfm"),
            Evaluator(toy_arch, vector100),
            seed=0,
        ).run()
        assert set(result.stats["batch"]) == {
            "batches", "candidates", "pruned", "prune_rate", "fallback",
        }
        assert set(result.stats["bnb"]) == {
            "nodes_expanded", "leaves_deferred", "subtrees_pruned",
            "infeasible_subtrees", "root_bound", "bound_tightness",
            "warm_start_metric",
        }
        assert result.stats["bnb"]["root_bound"] is not None
        # Leaf-buffered nodes are deferrals, not expansions: both stats
        # count real events (a deferred leaf used to short-circuit the
        # expansion counter via `continue`, leaving nodes_expanded == 1
        # next to hundreds of thousands of pruned subtrees).
        assert result.stats["bnb"]["leaves_deferred"] > 0

    def test_warm_start_disabled_still_exact(self, toy_arch, vector100):
        exact = ExhaustiveSearch(
            make_mapspace(toy_arch, vector100, "pfm"),
            Evaluator(toy_arch, vector100),
        ).run()
        cold = BranchBoundSearch(
            make_mapspace(toy_arch, vector100, "pfm"),
            Evaluator(toy_arch, vector100),
            seed=0,
            warm_samples=0,
        ).run()
        assert cold.best_metric == exact.best_metric
        assert cold.stats["bnb"]["warm_start_metric"] is None

    def test_constructor_validation(self, toy_arch, vector100):
        space = make_mapspace(toy_arch, vector100, "pfm")
        evaluator = Evaluator(toy_arch, vector100)
        with pytest.raises(SearchError):
            BranchBoundSearch(space, evaluator, warm_samples=-1)
        with pytest.raises(SearchError):
            BranchBoundSearch(space, evaluator, leaf_width=0)
        with pytest.raises(SearchError):
            BranchBoundSearch(space, evaluator, batch_size=0)

    def test_limit_enforced(self, toy_arch, vector100):
        with pytest.raises(SearchError):
            BranchBoundSearch(
                make_mapspace(toy_arch, vector100, "pfm"),
                Evaluator(toy_arch, vector100),
                seed=0,
                warm_samples=0,
                limit=3,
            ).run()

"""Unit tests for seeded RNG helpers."""

import random

from repro.utils.rng import make_rng, spawn


class TestMakeRng:
    def test_none_gives_fresh_generator(self):
        rng = make_rng(None)
        assert isinstance(rng, random.Random)

    def test_int_seed_deterministic(self):
        assert make_rng(7).random() == make_rng(7).random()

    def test_existing_generator_passed_through(self):
        rng = random.Random(3)
        assert make_rng(rng) is rng

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()


class TestSpawn:
    def test_child_streams_deterministic(self):
        a = spawn(make_rng(5))
        b = spawn(make_rng(5))
        assert a.random() == b.random()

    def test_child_independent_of_parent_continuation(self):
        parent = make_rng(5)
        child = spawn(parent)
        first = child.random()
        parent.random()  # advancing the parent does not affect the child
        assert child.random() != first  # child keeps its own stream

    def test_children_differ(self):
        parent = make_rng(9)
        assert spawn(parent).random() != spawn(parent).random()

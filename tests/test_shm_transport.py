"""Shared-memory transport: roundtrips, fallback parity, crash hygiene.

The transport's contract has three legs:

* **fidelity** — arrays and packed batches attach bit-identical to what
  was shared, whether the bundle rode shared memory or the pickle
  fallback;
* **hygiene** — the driver is the only unlinker, so ``/dev/shm`` ends
  clean even when a worker dies mid-batch by SIGKILL;
* **schema stability** — a search forced onto the pickle fallback
  returns the same ``SearchResult.stats`` shape (and the same optimum)
  as the shm path, so downstream consumers never branch on transport.
"""

from __future__ import annotations

import glob
import multiprocessing
import os
import signal
import time

import numpy as np
import pytest

from repro.arch import eyeriss_like
from repro.mapspace import MapspaceKind
from repro.mapspace.factory import make_mapspace
from repro.model import Evaluator
from repro.model.batch import BatchEvaluator, MappingBatch
from repro.model.shm import SEGMENT_PREFIX, BundleHandle, ShmArrayBundle
from repro.problem import GemmLayer
from repro.search import BranchBoundSearch


def _segments():
    return glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*")


def _arrays():
    return {
        "a": np.arange(12, dtype=np.int64).reshape(3, 4),
        "b": np.array([5.0, 6.5], dtype=np.float64),
        "c": np.array([7], dtype=np.int64),
    }


def _fixture():
    arch = eyeriss_like()
    workload = GemmLayer("g8x4x4", m=8, n=4, k=4).workload()
    space = make_mapspace(arch, workload, MapspaceKind.PFM)
    return space, Evaluator(arch, workload)


class TestBundleRoundtrip:
    def test_share_attach_roundtrip(self):
        bundle = ShmArrayBundle.share(_arrays())
        try:
            assert bundle.transport == "shm"
            assert bundle.handle.segment.startswith(SEGMENT_PREFIX)
            attached = ShmArrayBundle.attach(bundle.handle)
            for name, original in _arrays().items():
                view = attached.arrays[name]
                np.testing.assert_array_equal(view, original)
                assert not view.flags.writeable
            # Views must be dropped before the mapping is closed.
            del view, attached
        finally:
            bundle.release()
        assert not _segments()

    def test_pickle_fallback_roundtrip(self):
        bundle = ShmArrayBundle.share(_arrays(), allow_shm=False)
        assert bundle.transport == "pickle"
        assert bundle.handle.segment is None
        attached = ShmArrayBundle.attach(bundle.handle)
        for name, original in _arrays().items():
            np.testing.assert_array_equal(attached.arrays[name], original)
        bundle.release()
        assert not _segments()

    def test_release_is_idempotent(self):
        bundle = ShmArrayBundle.share(_arrays())
        bundle.release()
        bundle.release()
        assert not _segments()


class TestBatchTransport:
    def _first_batch(self, space):
        batch = next(iter(space.iter_batches(batch_size=64)))
        batch.tags = np.arange(batch.size, dtype=np.int64)
        return batch

    @pytest.mark.parametrize("allow_shm", [True, False], ids=["shm", "pickle"])
    def test_batch_prices_identically_after_transport(self, allow_shm):
        space, evaluator = _fixture()
        engine = BatchEvaluator(evaluator, layout=space.batch_layout())
        assert engine.supported
        batch = self._first_batch(space)
        bundle, descriptor = batch.to_shared(allow_shm=allow_shm)
        try:
            restored, attachment = MappingBatch.from_shared(
                space.batch_layout(), descriptor
            )
            np.testing.assert_array_equal(restored.tags, batch.tags)
            before = engine.evaluate_batch(batch, objective="edp")
            after = engine.evaluate_batch(restored, objective="edp")
            np.testing.assert_array_equal(before.valid, after.valid)
            np.testing.assert_array_equal(before.metric, after.metric)
            del restored, attachment
        finally:
            bundle.release()
        assert not _segments()


def _attach_and_hang(handle: BundleHandle, ready) -> None:
    bundle = ShmArrayBundle.attach(handle)
    # Touch the views so the mapping is genuinely live when we die.
    total = int(sum(int(array.sum()) for array in bundle.arrays.values()))
    ready.put((os.getpid(), total))
    time.sleep(60)


class TestCrashHygiene:
    def test_sigkilled_worker_leaks_no_segments(self):
        bundle = ShmArrayBundle.share(_arrays())
        assert bundle.transport == "shm"
        ctx = multiprocessing.get_context("fork")
        ready = ctx.Queue()
        child = ctx.Process(
            target=_attach_and_hang, args=(bundle.handle, ready)
        )
        child.start()
        try:
            pid, total = ready.get(timeout=30)
            expected = int(
                sum(int(array.sum()) for array in _arrays().values())
            )
            assert total == expected
            # Kill mid-use: no atexit hooks, no cleanup, nothing — the
            # exact failure mode a pool worker crash produces.
            os.kill(pid, signal.SIGKILL)
            child.join(timeout=30)
            assert child.exitcode == -signal.SIGKILL
        finally:
            bundle.release()
        assert not _segments()


class TestFallbackSchemaParity:
    def test_search_stats_schema_identical_on_pickle_fallback(
        self, monkeypatch
    ):
        space, evaluator = _fixture()
        shm_run = BranchBoundSearch(
            space, evaluator, seed=0, workers=2, leaf_width=4, batch_size=16
        ).run()
        assert shm_run.stats["pool"]["transport"] == "shm"
        # Simulate a platform without multiprocessing.shared_memory: the
        # same search must degrade to pickle transport, find the same
        # optimum, and emit the same stats schema.
        monkeypatch.setattr("repro.model.shm.HAS_SHM", False)
        pickle_run = BranchBoundSearch(
            space, evaluator, seed=0, workers=2, leaf_width=4, batch_size=16
        ).run()
        assert pickle_run.stats["pool"]["transport"] == "pickle"
        assert pickle_run.best_metric == shm_run.best_metric
        assert set(pickle_run.stats) == set(shm_run.stats)
        assert set(pickle_run.stats["bnb"]) == set(shm_run.stats["bnb"])
        assert set(pickle_run.stats["pool"]) == set(shm_run.stats["pool"])
        assert not _segments()

"""Unit tests for zero-gating — the Fig. 8 sparsity caveat."""

import pytest

from repro.arch import toy_linear_architecture
from repro.core import find_best_mapping
from repro.energy import estimate_energy_table
from repro.model.sparsity import gated_evaluation
from repro.problem import pad_dimension
from repro.problem.gemm import vector_workload


@pytest.fixture(scope="module")
def setting():
    arch = toy_linear_architecture(16)
    table = estimate_energy_table(arch)
    return arch, table


def search(arch, workload, kind):
    return find_best_mapping(
        arch, workload, kind=kind, seed=0,
        max_evaluations=1500, patience=400,
    ).best


class TestGatedEvaluation:
    def test_full_density_is_identity(self, setting):
        arch, table = setting
        best = search(arch, vector_workload("v", 128), "pfm")
        gated = gated_evaluation(arch, best, 1.0, table)
        assert gated.energy_pj == pytest.approx(best.energy_pj)
        assert gated.cycles == best.cycles

    def test_energy_scales_down_cycles_unchanged(self, setting):
        arch, table = setting
        best = search(arch, vector_workload("v", 128), "pfm")
        gated = gated_evaluation(arch, best, 0.5, table)
        assert gated.energy_pj < best.energy_pj
        assert gated.cycles == best.cycles
        assert gated.energy_breakdown_pj["compute"] == pytest.approx(
            best.energy_breakdown_pj["compute"] * 0.5
        )

    def test_breakdown_still_sums(self, setting):
        arch, table = setting
        best = search(arch, vector_workload("v", 128), "pfm")
        gated = gated_evaluation(arch, best, 0.7, table)
        assert sum(gated.energy_breakdown_pj.values()) == pytest.approx(
            gated.energy_pj
        )

    def test_rejects_bad_fraction(self, setting):
        arch, table = setting
        best = search(arch, vector_workload("v", 128), "pfm")
        with pytest.raises(ValueError):
            gated_evaluation(arch, best, 0.0, table)

    def test_paper_claim_gated_padding_matches_ruby_s(self, setting):
        """With ideal zero-gating, padding closes the gap to Ruby-S at
        D = 113 — the paper's Fig. 8 caveat."""
        arch, table = setting
        workload = vector_workload("d113", 113)
        padded = pad_dimension(workload, "D", 16)

        ruby = search(arch, workload, "ruby-s")
        padded_dense = search(arch, padded.workload, "pfm")
        padded_gated = gated_evaluation(
            arch, padded_dense, padded.effectual_fraction, table
        )

        # Dense padding loses ~13% EDP; gated padding is within ~2%.
        assert padded_dense.edp > ruby.edp * 1.08
        assert padded_gated.edp <= ruby.edp * 1.02
        assert padded_gated.edp >= ruby.edp * 0.95

"""Unit tests for the energy/area estimation package."""

import pytest

from repro.arch import eyeriss_like, toy_linear_architecture
from repro.energy import (
    DRAM_ACCESS_PJ,
    EnergyTable,
    LevelEnergy,
    dram_access_energy_pj,
    estimate_area_mm2,
    estimate_energy_table,
    sram_access_energy_pj,
    sram_area_mm2,
)
from repro.energy.accelergy import mac_energy_pj, per_tensor_access_energy_pj
from repro.exceptions import SpecError


class TestSramModel:
    def test_monotone_in_capacity(self):
        assert sram_access_energy_pj(64) < sram_access_energy_pj(1024)
        assert sram_access_energy_pj(1024) < sram_access_energy_pj(128 * 1024)

    def test_scales_with_word_width(self):
        narrow = sram_access_energy_pj(1024, word_bits=8)
        wide = sram_access_energy_pj(1024, word_bits=16)
        assert wide == pytest.approx(2 * narrow)

    def test_glb_to_mac_ratio_is_eyeriss_like(self):
        # The Eyeriss energy table has the 128 KiB buffer at ~6x a MAC.
        ratio = sram_access_energy_pj(128 * 1024) / mac_energy_pj(16)
        assert 4 < ratio < 8

    def test_small_spad_near_mac_cost(self):
        ratio = sram_access_energy_pj(448) / mac_energy_pj(16)
        assert 0.2 < ratio < 1.0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            sram_access_energy_pj(0)

    def test_area_monotone(self):
        assert sram_area_mm2(1024) < sram_area_mm2(128 * 1024)


class TestDramModel:
    def test_reference(self):
        assert dram_access_energy_pj(16) == DRAM_ACCESS_PJ

    def test_dram_dwarfs_sram(self):
        assert dram_access_energy_pj() > 10 * sram_access_energy_pj(128 * 1024)


class TestEnergyTable:
    def test_lookup(self):
        table = EnergyTable(
            levels={"L": LevelEnergy(read_pj=1.0, write_pj=2.0)}, mac_pj=0.5
        )
        assert table.read_pj("L") == 1.0
        assert table.write_pj("L") == 2.0

    def test_unknown_level_raises(self):
        table = EnergyTable(levels={}, mac_pj=0.5)
        with pytest.raises(SpecError):
            table.read_pj("nope")

    def test_scaled(self):
        table = EnergyTable(
            levels={"L": LevelEnergy(read_pj=1.0, write_pj=2.0)}, mac_pj=0.5
        )
        half = table.scaled(0.5)
        assert half.read_pj("L") == 0.5
        assert half.mac_pj == 0.25

    def test_rejects_negative(self):
        with pytest.raises(SpecError):
            LevelEnergy(read_pj=-1.0, write_pj=0.0)


class TestAccelergyEstimator:
    def test_eyeriss_ordering(self, eyeriss):
        table = estimate_energy_table(eyeriss)
        dram = table.read_pj("DRAM")
        glb = table.read_pj("GlobalBuffer")
        pe = table.read_pj("PEBuffer")
        assert dram > glb > pe > 0
        assert table.mac_pj == pytest.approx(2.2)

    def test_partitioned_level_uses_weighted_mean(self, eyeriss):
        pe_energy = estimate_energy_table(eyeriss).read_pj("PEBuffer")
        input_only = per_tensor_access_energy_pj(eyeriss, "PEBuffer", "Inputs")
        weight_only = per_tensor_access_energy_pj(eyeriss, "PEBuffer", "Weights")
        assert input_only < pe_energy < weight_only * 1.01

    def test_writes_cost_more_than_reads(self, eyeriss):
        table = estimate_energy_table(eyeriss)
        assert table.write_pj("GlobalBuffer") > table.read_pj("GlobalBuffer")

    def test_mac_energy_scales_quadratically(self):
        assert mac_energy_pj(32) == pytest.approx(4 * mac_energy_pj(16))


class TestAreaModel:
    def test_bigger_array_bigger_area(self):
        small = estimate_area_mm2(eyeriss_like(2, 7))
        big = estimate_area_mm2(eyeriss_like(16, 16))
        assert big > small

    def test_pe_buffers_counted_per_instance(self):
        one = estimate_area_mm2(toy_linear_architecture(1))
        nine = estimate_area_mm2(toy_linear_architecture(9))
        assert nine > 5 * one

    def test_dram_excluded(self):
        # Off-chip DRAM contributes no on-chip area: a design with only a
        # DRAM level and one PE should have near-zero area.
        area = estimate_area_mm2(toy_linear_architecture(1, pe_buffer_bytes=64))
        assert area < 0.01

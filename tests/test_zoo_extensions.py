"""Unit tests for the extension workload zoos (MobileNet, VGG-16, BERT)."""

import pytest

from repro.problem import DepthwiseConvLayer
from repro.problem.depthwise import depthwise_workload
from repro.zoo import (
    BERT_BASE_LAYERS,
    MOBILENET_V1_LAYERS,
    VGG16_LAYERS,
    bert_base_workloads,
    bert_representative,
    mobilenet_representative,
    mobilenet_workloads,
    vgg16_workloads,
)


class TestDepthwise:
    def test_no_output_channel_dim(self):
        w = DepthwiseConvLayer("dw", c=32, p=8, q=8, r=3, s=3).workload()
        assert "M" not in w.dim_names
        assert w.tensor("Weights").relevant_dims == {"C", "R", "S"}
        assert w.tensor("Outputs").relevant_dims == {"N", "C", "P", "Q"}

    def test_channel_relevant_to_all_tensors(self):
        w = DepthwiseConvLayer("dw", c=16, p=4, q=4, r=3, s=3).workload()
        for tensor in w.tensors:
            assert "C" in tensor.relevant_dims

    def test_macs_linear_in_channels(self):
        small = DepthwiseConvLayer("a", c=8, p=4, q=4, r=3, s=3).workload()
        big = DepthwiseConvLayer("b", c=16, p=4, q=4, r=3, s=3).workload()
        assert big.total_operations == 2 * small.total_operations

    def test_stride_affects_input_footprint(self):
        layer = DepthwiseConvLayer("dw", c=1, p=10, q=10, r=3, s=3,
                                   stride_h=2, stride_w=2)
        w = layer.workload()
        assert w.tensor_size("Inputs") == 21 * 21

    def test_rejects_bad_shape(self):
        from repro.exceptions import SpecError

        with pytest.raises(SpecError):
            DepthwiseConvLayer("dw", c=0)

    def test_evaluable_end_to_end(self):
        from repro.arch import eyeriss_like
        from repro.core import find_best_mapping

        w = DepthwiseConvLayer("dw", c=32, p=14, q=14, r=3, s=3).workload()
        result = find_best_mapping(
            eyeriss_like(), w, kind="ruby-s", seed=0,
            max_evaluations=500, patience=200,
        )
        assert result.best is not None and result.best.valid


class TestMobileNet:
    def test_all_validate(self):
        for workload, count in mobilenet_workloads():
            workload.validate()
            assert count >= 1

    def test_alternating_structure(self):
        names = [layer.name for layer, _ in MOBILENET_V1_LAYERS]
        assert sum(1 for n in names if n.startswith("mb_dw")) == 9
        assert sum(1 for n in names if n.startswith("mb_pw")) == 9

    def test_representative_subset(self):
        rep = mobilenet_representative()
        assert 0 < len(rep) < len(mobilenet_workloads())


class TestVgg16:
    def test_thirteen_convs(self):
        assert sum(count for _, count in VGG16_LAYERS) == 13

    def test_all_validate(self):
        for workload, _ in vgg16_workloads():
            workload.validate()

    def test_fc_included_by_default(self):
        names = [w.name for w, _ in vgg16_workloads()]
        assert "vgg_fc6" in names
        assert "vgg_fc6" not in [
            w.name for w, _ in vgg16_workloads(include_fc=False)
        ]


class TestBert:
    def test_all_validate(self):
        for workload, _ in bert_base_workloads():
            workload.validate()

    def test_per_block_counts(self):
        by_name = {layer.name: count for layer, count in BERT_BASE_LAYERS}
        # 12 blocks x 12 heads = 144 attention GEMMs.
        assert by_name["bert_attn_scores"] == 144
        assert by_name["bert_qkv_proj"] == 36

    def test_head_dim(self):
        by_name = {layer.name: layer for layer, _ in BERT_BASE_LAYERS}
        assert by_name["bert_attn_scores"].k == 64

    def test_representative_subset(self):
        assert len(bert_representative()) == 3

"""Unit tests for the deterministic fault-injection harness."""

import json
import pickle

import pytest

from repro.exceptions import EvaluationError, SpecError
from repro.utils.faults import FAULT_KINDS, Fault, FaultPlan


class TestFault:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecError):
            Fault("a", 0, "explode")

    def test_negative_attempt_rejected(self):
        with pytest.raises(SpecError):
            Fault("a", -1, "raise")

    def test_dict_round_trip(self):
        original = Fault("job-x", 2, "hang", seconds=1.5, message="zzz")
        assert Fault.from_dict(original.to_dict()) == original


class TestFaultPlan:
    def test_lookup_is_exact_coordinate(self):
        plan = FaultPlan([Fault("a", 1, "raise")])
        assert plan.fault_for("a", 1) is not None
        assert plan.fault_for("a", 0) is None
        assert plan.fault_for("b", 1) is None

    def test_inject_noop_without_scheduled_fault(self):
        FaultPlan().inject("anything", 0)  # must not raise

    def test_inject_raise_fires_evaluation_error(self):
        plan = FaultPlan([Fault("a", 0, "raise", message="boom")])
        with pytest.raises(EvaluationError, match="boom"):
            plan.inject("a", 0)
        plan.inject("a", 1)  # next attempt clean

    def test_deterministic_across_calls(self):
        plan = FaultPlan([Fault("a", 0, "raise")])
        for _ in range(3):
            with pytest.raises(EvaluationError):
                plan.inject("a", 0)

    def test_json_round_trip(self):
        plan = FaultPlan(
            [Fault("a", 0, "crash"), Fault("b", 1, "hang", seconds=9.0)]
        )
        data = json.loads(json.dumps(plan.to_dict()))
        rebuilt = FaultPlan.from_dict(data)
        assert len(rebuilt) == 2
        assert rebuilt.fault_for("b", 1).seconds == 9.0
        assert rebuilt.fault_for("a", 0).kind == "crash"

    def test_wrong_schema_rejected(self):
        with pytest.raises(SpecError):
            FaultPlan.from_dict({"schema": 99, "faults": []})

    def test_picklable_for_spawn_workers(self):
        plan = FaultPlan([Fault("a", 0, kind) for kind in ("raise",)])
        rebuilt = pickle.loads(pickle.dumps(plan))
        assert rebuilt.fault_for("a", 0).kind == "raise"

    def test_all_kinds_constructible(self):
        for kind in FAULT_KINDS:
            assert Fault("a", 0, kind).kind == kind

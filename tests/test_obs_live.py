"""Live-telemetry unit tests: ProgressTracker, ProgressPrinter, ObsServer.

The tracker math (fractions, EWMA ETA, ring buffer, weak registry) is
tested with an injected clock; the HTTP endpoints are exercised against a
real ObsServer bound to an ephemeral loopback port via urllib, so the
tests cover exactly what a Prometheus scrape or a ``/progress`` poller
would see.
"""

import gc
import io
import json
import time
import urllib.error
import urllib.request

import pytest

from repro.obs import (
    MetricsRegistry,
    ObsServer,
    ProgressPrinter,
    ProgressTracker,
    Tracer,
    active_trackers,
    default_registry,
    empty_progress_stats,
    obs_scope,
)
from repro.obs.server import PROMETHEUS_CONTENT_TYPE, progress_payload


class FakeClock:
    """Deterministic monotonic clock for tracker tests."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


class TestProgressTracker:
    def test_fraction_none_without_total(self):
        tracker = ProgressTracker(driver="t", clock=FakeClock())
        tracker.advance(10)
        assert tracker.fraction() is None
        assert tracker.eta_seconds() is None
        payload = tracker.stats_payload()
        assert payload["total_units"] is None
        assert payload["completed_units"] == 10.0

    def test_negative_advance_raises(self):
        tracker = ProgressTracker(driver="t", total_units=10)
        with pytest.raises(ValueError):
            tracker.advance(-1)

    def test_fraction_clamped_to_one(self):
        tracker = ProgressTracker(driver="t", total_units=10)
        tracker.advance(25)
        assert tracker.fraction() == 1.0

    def test_ewma_rate_and_eta(self):
        clock = FakeClock()
        tracker = ProgressTracker(driver="t", total_units=100, clock=clock)
        clock.now = 1.0
        tracker.advance(10)
        payload = tracker.stats_payload()
        # 10 units over 1s -> first EWMA sample is the raw rate.
        assert payload["rate_units_per_s"] == pytest.approx(10.0)
        assert payload["eta_s"] == pytest.approx(9.0)
        assert payload["fraction"] == pytest.approx(0.1)

    def test_eta_none_before_rate_window_elapses(self):
        clock = FakeClock()
        tracker = ProgressTracker(driver="t", total_units=100, clock=clock)
        clock.now = 0.05  # below RATE_INTERVAL_S: no rate sample yet
        tracker.advance(5)
        assert tracker.eta_seconds() is None

    def test_finish_snaps_completed_and_clears_eta(self):
        clock = FakeClock()
        tracker = ProgressTracker(driver="t", total_units=100, clock=clock)
        clock.now = 1.0
        tracker.advance(10)
        assert tracker.eta_seconds() is not None
        clock.now = 2.0
        tracker.finish()
        assert tracker.done
        assert tracker.fraction() == 1.0
        assert tracker.eta_seconds() is None
        assert tracker.stats_payload()["completed_units"] == 100.0
        # elapsed freezes at finish time.
        clock.now = 50.0
        assert tracker.elapsed_seconds() == pytest.approx(2.0)

    def test_timeline_ring_buffer_bound(self):
        clock = FakeClock()
        tracker = ProgressTracker(
            driver="t", total_units=10, timeline_capacity=4, clock=clock
        )
        for i in range(10):
            clock.now = float(i)
            tracker.improved(100.0 - i)
        snap = tracker.snapshot()
        assert snap["improvements"] == 10
        timeline = snap["timeline"]
        assert len(timeline) == 4
        # Only the most recent improvements survive.
        assert [point[1] for point in timeline] == [94.0, 93.0, 92.0, 91.0]
        assert snap["best_metric"] == 91.0

    def test_stats_payload_matches_empty_schema(self):
        tracker = ProgressTracker(driver="t")
        assert set(tracker.stats_payload()) == set(empty_progress_stats())

    def test_snapshot_is_json_serializable(self):
        clock = FakeClock()
        tracker = ProgressTracker(driver="t", total_units=8, clock=clock)
        clock.now = 1.0
        tracker.advance(4)
        tracker.improved(3.5)
        text = json.dumps(tracker.snapshot())
        parsed = json.loads(text)
        assert parsed["driver"] == "t"
        assert parsed["timeline"] == [[1.0, 3.5]]

    def test_weak_registry_drops_collected_trackers(self):
        tracker = ProgressTracker(driver="weakreg-unique")
        assert any(
            t.driver == "weakreg-unique" for t in active_trackers()
        )
        del tracker
        gc.collect()
        assert not any(
            t.driver == "weakreg-unique" for t in active_trackers()
        )

    def test_active_trackers_sorted_by_creation(self):
        first = ProgressTracker(driver="order-a")
        time.sleep(0.002)
        second = ProgressTracker(driver="order-b")
        live = [
            t for t in active_trackers() if t.driver.startswith("order-")
        ]
        assert live == [first, second]

    def test_no_gauge_traffic_without_scope(self):
        default_registry().reset()
        tracker = ProgressTracker(driver="t", total_units=10)
        tracker.advance(5)
        tracker.finish()
        assert default_registry().names() == []

    def test_gauges_published_under_scope(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        with obs_scope(registry=registry):
            tracker = ProgressTracker(
                driver="scoped", total_units=10, clock=clock
            )
            clock.now = 1.0
            tracker.advance(5)
        fraction = registry.gauge("search.progress_fraction").value(
            driver="scoped"
        )
        assert fraction == pytest.approx(0.5)
        assert registry.gauge("search.eta_seconds").value(
            driver="scoped"
        ) == pytest.approx(1.0)

    def test_set_total_reestimates(self):
        tracker = ProgressTracker(driver="t")
        tracker.advance(5)
        assert tracker.fraction() is None
        tracker.set_total(20)
        assert tracker.fraction() == pytest.approx(0.25)
        tracker.set_total(None)
        assert tracker.fraction() is None


class TestProgressPrinter:
    def _tracker(self, fraction_total=100):
        clock = FakeClock()
        tracker = ProgressTracker(
            driver="printer", total_units=fraction_total, clock=clock
        )
        clock.now = 1.0
        tracker.advance(25)
        tracker.improved(1.25e-3)
        return tracker

    def test_compose_shows_fraction_eta_and_best(self):
        tracker = self._tracker()
        line = ProgressPrinter._compose([tracker])
        assert "printer" in line
        assert "25.0%" in line
        assert "(25/100)" in line
        assert "eta 3.0s" in line
        assert "best 1.2500e-03" in line

    def test_compose_units_only_without_total(self):
        tracker = ProgressTracker(driver="unbounded", clock=FakeClock())
        tracker.advance(42)
        line = ProgressPrinter._compose([tracker])
        assert "unbounded 42 units" in line

    def test_compose_skips_done_trackers(self):
        tracker = self._tracker()
        tracker.finish()
        assert ProgressPrinter._compose([tracker]) == ""

    def test_render_once_repaints_one_line(self, monkeypatch):
        tracker = self._tracker()
        monkeypatch.setattr(
            "repro.obs.progress.active_trackers", lambda: [tracker]
        )
        stream = io.StringIO()
        printer = ProgressPrinter(stream=stream)
        printer.render_once()
        output = stream.getvalue()
        assert output.startswith("\r")
        assert "printer" in output

    def test_render_once_silent_with_no_trackers(self, monkeypatch):
        monkeypatch.setattr(
            "repro.obs.progress.active_trackers", lambda: []
        )
        stream = io.StringIO()
        ProgressPrinter(stream=stream).render_once()
        assert stream.getvalue() == ""

    def test_render_pads_over_previous_longer_line(self, monkeypatch):
        long_tracker = self._tracker()
        stream = io.StringIO()
        printer = ProgressPrinter(stream=stream)
        monkeypatch.setattr(
            "repro.obs.progress.active_trackers", lambda: [long_tracker]
        )
        printer.render_once()
        first = stream.getvalue()
        monkeypatch.setattr(
            "repro.obs.progress.active_trackers", lambda: []
        )
        printer.render_once()
        second = stream.getvalue()[len(first):]
        # The repaint blanks out the previous, longer line.
        assert second.startswith("\r")
        assert set(second[1:]) == {" "}
        assert len(second) - 1 >= len(first) - 1

    def test_stop_terminates_line_after_writes(self, monkeypatch):
        tracker = self._tracker()
        monkeypatch.setattr(
            "repro.obs.progress.active_trackers", lambda: [tracker]
        )
        stream = io.StringIO()
        printer = ProgressPrinter(stream=stream, interval_s=0.01)
        printer.start()
        deadline = time.time() + 2.0
        while "printer" not in stream.getvalue() and time.time() < deadline:
            time.sleep(0.01)
        printer.stop()
        assert stream.getvalue().endswith("\n")


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return (
            response.status,
            response.headers.get("Content-Type"),
            response.read().decode("utf-8"),
        )


@pytest.fixture
def live_server():
    registry = MetricsRegistry()
    registry.counter("search.runs").inc(3.0, driver="random")
    registry.gauge("search.best_metric").set(1.5, driver="random")
    registry.histogram("span.duration_seconds").observe(0.25, name="s")
    server = ObsServer(registry)
    server.start()
    yield server
    server.stop()


class TestObsServer:
    def test_ephemeral_port_resolves_after_start(self, live_server):
        assert live_server.port != 0
        assert live_server.url.startswith("http://127.0.0.1:")

    def test_start_is_idempotent(self, live_server):
        port = live_server.port
        live_server.start()
        assert live_server.port == port

    def test_healthz(self, live_server):
        status, ctype, body = _get(live_server.url + "/healthz")
        assert status == 200
        assert body == "ok\n"
        # Root and trailing-slash forms route identically.
        assert _get(live_server.url + "/")[2] == "ok\n"
        assert _get(live_server.url + "/healthz/")[2] == "ok\n"

    def test_metrics_prometheus_exposition(self, live_server):
        status, ctype, body = _get(live_server.url + "/metrics")
        assert status == 200
        assert ctype == PROMETHEUS_CONTENT_TYPE
        assert 'repro_search_runs_total{driver="random"} 3' in body
        assert "# TYPE repro_search_runs_total counter" in body

    def test_metrics_json_envelope(self, live_server):
        status, ctype, body = _get(live_server.url + "/metrics.json")
        assert status == 200
        assert ctype == "application/json"
        payload = json.loads(body)
        assert payload["schema"] == 1
        assert "metrics" in payload

    def test_progress_endpoint_reports_live_tracker(self, live_server):
        clock = FakeClock()
        tracker = ProgressTracker(
            driver="served-search", total_units=200, clock=clock
        )
        clock.now = 1.0
        tracker.advance(50)
        tracker.improved(2.5)
        status, ctype, body = _get(live_server.url + "/progress")
        assert status == 200
        assert ctype == "application/json"
        payload = json.loads(body)
        assert payload["schema"] == 1
        snapshots = {
            snap["driver"]: snap for snap in payload["searches"]
        }
        snap = snapshots["served-search"]
        assert snap["fraction"] == pytest.approx(0.25)
        assert snap["improvements"] == 1
        assert snap["timeline"] == [[1.0, 2.5]]
        assert snap["done"] is False
        del tracker

    def test_progress_fraction_monotone_across_polls(self, live_server):
        clock = FakeClock()
        tracker = ProgressTracker(
            driver="mono-search", total_units=100, clock=clock
        )

        def fraction():
            _, _, body = _get(live_server.url + "/progress")
            snaps = json.loads(body)["searches"]
            return next(
                s["fraction"] for s in snaps if s["driver"] == "mono-search"
            )

        observed = []
        for step in range(1, 5):
            clock.now = float(step)
            tracker.advance(20)
            observed.append(fraction())
        assert observed == sorted(observed)
        assert observed[-1] == pytest.approx(0.8)

    def test_flame_placeholder_without_tracer(self, live_server):
        status, _, body = _get(live_server.url + "/flame")
        assert status == 200
        assert "no tracer attached" in body

    def test_flame_with_tracer(self):
        registry = MetricsRegistry()
        tracer = Tracer()
        with tracer.span("search.run", driver="random"):
            with tracer.span("search.generation"):
                pass
        with ObsServer(registry, tracer=tracer) as server:
            status, _, body = _get(server.url + "/flame")
        assert status == 200
        assert "search.run" in body

    def test_unknown_path_404(self, live_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(live_server.url + "/nope")
        assert excinfo.value.code == 404

    def test_progress_payload_shape(self):
        payload = progress_payload()
        assert payload["schema"] == 1
        assert isinstance(payload["time"], float)
        assert isinstance(payload["searches"], list)

"""Unit tests for the machine-readable experiment export."""

import json

from repro.experiments.export import (
    fig7_to_dict,
    fig8_to_dict,
    fig11_to_dict,
    fig13_to_dict,
    network_comparison_to_dict,
    save_result,
    table1_to_dict,
)


class TestExports:
    def test_table1_round_trips_through_json(self, linear_arch9):
        from repro.experiments import run_table1

        data = table1_to_dict(run_table1(dimension_sizes=(3, 12)))
        text = json.dumps(data)
        assert json.loads(text)["raw"]["pfm"] == data["raw"]["pfm"]

    def test_fig7_subsamples_and_handles_inf(self):
        from repro.experiments.fig07 import Fig7Result

        result = Fig7Result(scenario="s", evaluations=20, runs=1)
        result.series["pfm"] = [float("inf")] * 5 + [3.0] * 15
        data = fig7_to_dict(result, stride=5)
        assert data["series"]["pfm"] == [None, 3.0, 3.0, 3.0]
        json.dumps(data)  # must be JSON-able

    def test_fig8_export(self):
        from repro.experiments import run_fig8

        result = run_fig8(sizes=(31, 32), seeds=(0,), max_evaluations=200)
        data = fig8_to_dict(result)
        assert data["sizes"] == [31, 32]
        json.dumps(data)

    def test_network_comparison_export(self, eyeriss):
        from repro.experiments.fig10 import compare_network
        from repro.problem import ConvLayer

        comparison = compare_network(
            eyeriss,
            [(ConvLayer("pw", c=32, m=32, p=7, q=7).workload(), 1)],
            seeds=(0,), max_evaluations=300, patience=100,
        )
        data = network_comparison_to_dict(comparison, "fig10")
        assert data["layers"][0]["name"] == "pw"
        assert "edp_ratio" in data["network"]
        json.dumps(data)

    def test_fig11_export(self):
        from repro.experiments import run_fig11

        result = run_fig11(
            seeds=(0,), max_evaluations=200, patience=80,
            subset=("db_gemm_ocr",),
        )
        data = fig11_to_dict(result)
        assert data["workloads"][0]["domain"] == "ocr"
        json.dumps(data)

    def test_fig13_export(self):
        from repro.experiments import run_fig13

        result = run_fig13(
            suite="deepbench", shapes=((2, 7),),
            max_evaluations=200, patience=80,
        )
        data = fig13_to_dict(result)
        assert len(data["points"]) == 2
        assert isinstance(data["ruby_s_dominates"], bool)
        json.dumps(data)

    def test_save_result_creates_dirs(self, tmp_path):
        path = save_result({"a": 1}, tmp_path / "nested" / "out.json")
        assert path.exists()
        assert json.loads(path.read_text()) == {"a": 1}

"""Unit tests for the multi-objective Pareto search."""

import pytest

from repro.exceptions import SearchError
from repro.mapspace import ruby_s_mapspace
from repro.search.pareto_search import ParetoSearch, _dominates


class TestParetoSearch:
    @pytest.fixture
    def result(self, toy_arch, vector100, toy_evaluator):
        space = ruby_s_mapspace(toy_arch, vector100)
        return ParetoSearch(
            space, toy_evaluator, max_evaluations=800, seed=0
        ).run()

    def test_frontier_nonempty(self, result):
        assert result.frontier
        assert result.num_valid > 0

    def test_frontier_mutually_nondominated(self, result):
        for a in result.frontier:
            for b in result.frontier:
                if a is not b:
                    assert not _dominates(a, b)

    def test_frontier_sorted_by_energy(self, result):
        energies = [e.energy_pj for e in result.frontier]
        assert energies == sorted(energies)
        cycles = [e.cycles for e in result.frontier]
        assert cycles == sorted(cycles, reverse=True)

    def test_best_by_objective(self, result):
        fastest = result.best_by("delay")
        leanest = result.best_by("energy")
        assert fastest.cycles <= leanest.cycles
        assert leanest.energy_pj <= fastest.energy_pj

    def test_budgeted_queries(self, result):
        leanest = result.best_by("energy")
        fastest = result.best_by("delay")
        # With an unlimited energy budget, the fastest mapping wins.
        assert (
            result.fastest_within_energy(float("inf")).cycles == fastest.cycles
        )
        # With the leanest mapping's exact budget, it is the only choice
        # at its energy level.
        pick = result.fastest_within_energy(leanest.energy_pj)
        assert pick is not None and pick.energy_pj <= leanest.energy_pj
        # Impossible budgets return None.
        assert result.fastest_within_energy(0.0) is None
        assert result.leanest_within_latency(0) is None

    def test_leanest_within_latency(self, result):
        fastest = result.best_by("delay")
        pick = result.leanest_within_latency(fastest.cycles)
        assert pick is not None and pick.cycles <= fastest.cycles

    def test_deterministic(self, toy_arch, vector100, toy_evaluator):
        space = ruby_s_mapspace(toy_arch, vector100)
        a = ParetoSearch(space, toy_evaluator, max_evaluations=300, seed=9).run()
        b = ParetoSearch(space, toy_evaluator, max_evaluations=300, seed=9).run()
        assert [e.edp for e in a.frontier] == [e.edp for e in b.frontier]

    def test_rejects_bad_budget(self, toy_arch, vector100, toy_evaluator):
        space = ruby_s_mapspace(toy_arch, vector100)
        with pytest.raises(SearchError):
            ParetoSearch(space, toy_evaluator, max_evaluations=0)

    def test_frontier_contains_edp_optimum_region(
        self, toy_arch, vector100, toy_evaluator
    ):
        # The EDP-best mapping is never dominated, so a frontier entry has
        # EDP at most the single-objective search's best (same budget).
        from repro.search import RandomSearch

        space = ruby_s_mapspace(toy_arch, vector100)
        pareto = ParetoSearch(space, toy_evaluator, max_evaluations=600, seed=4).run()
        single = RandomSearch(
            space, toy_evaluator, max_evaluations=600, patience=None, seed=4
        ).run()
        assert pareto.best_by("edp").edp <= single.best_metric * 1.0001

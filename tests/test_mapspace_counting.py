"""Unit tests for mapspace-size counting (the Table I machinery)."""

import pytest

from repro.exceptions import MapspaceError
from repro.mapspace import MapspaceKind, count_mapspace_sizes
from repro.mapspace.counting import count_mapspace_size, table1_row
from repro.zoo.toy import table1_workload


class TestCounting:
    def test_ordering_pfm_smallest_ruby_largest(self, linear_arch9):
        w = table1_workload(36)
        sizes = count_mapspace_sizes(linear_arch9, w, count_valid=False)
        pfm = sizes[MapspaceKind.PFM].raw
        ruby_s = sizes[MapspaceKind.RUBY_S].raw
        ruby_t = sizes[MapspaceKind.RUBY_T].raw
        ruby = sizes[MapspaceKind.RUBY].raw
        assert pfm < ruby_s < ruby
        assert pfm < ruby_t <= ruby

    def test_prime_dimension_pfm_tiny(self, linear_arch9):
        w = table1_workload(127)
        sizes = count_mapspace_sizes(
            linear_arch9, w, kinds=[MapspaceKind.PFM, MapspaceKind.RUBY_S],
            count_valid=False,
        )
        # A prime D admits only trivial perfect splits across 3 slots with
        # fanout 9: D temporal at either level (spatial must stay 1).
        # Ruby-S adds a chain per spatial bound 2..9 plus the all-inner one.
        assert sizes[MapspaceKind.PFM].raw == 2
        assert sizes[MapspaceKind.RUBY_S].raw == 10

    def test_valid_subset_of_raw(self, linear_arch9):
        w = table1_workload(100)
        sizes = count_mapspace_sizes(linear_arch9, w, count_valid=True)
        for result in sizes.values():
            assert result.valid is not None
            assert result.valid <= result.raw

    def test_valid_counting_disabled(self, linear_arch9):
        result = count_mapspace_size(
            linear_arch9, table1_workload(12), MapspaceKind.PFM,
            count_valid=False,
        )
        assert result.valid is None

    def test_enumeration_cap_enforced(self, linear_arch9):
        with pytest.raises(MapspaceError):
            count_mapspace_size(
                linear_arch9,
                table1_workload(4096),
                MapspaceKind.RUBY,
                enumeration_cap=100,
            )

    def test_table1_row_shape(self, linear_arch9):
        dim, sizes = table1_row(linear_arch9, table1_workload(27))
        assert dim == 27
        assert set(sizes) == {"pfm", "ruby", "ruby-s", "ruby-t"}

    def test_ruby_s_growth_bounded_by_fanout(self, linear_arch9):
        # Ruby-S size grows ~ linearly with the divisor structure times the
        # fanout (9), far slower than Ruby's quadratic-ish growth.
        small = count_mapspace_size(
            linear_arch9, table1_workload(64), MapspaceKind.RUBY_S,
            count_valid=False,
        ).raw
        big = count_mapspace_size(
            linear_arch9, table1_workload(64), MapspaceKind.RUBY,
            count_valid=False,
        ).raw
        assert big > 5 * small

    def test_counts_deduplicate(self, linear_arch9):
        # D=2 over 3 slots: tiny space, easy to verify by hand.
        # PFM chains (outer t, spatial<=9, inner t): (2,1,1),(1,2,1),(1,1,2).
        result = count_mapspace_size(
            linear_arch9, table1_workload(2), MapspaceKind.PFM,
            count_valid=False,
        )
        assert result.raw == 3

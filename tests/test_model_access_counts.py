"""Hand-verified access-count scenarios for the cost model.

Every expected number in this file was derived on paper from the reuse
rules (see the module docstring of repro.model.access_counts), so these
tests pin the model's semantics, not its implementation.
"""

import pytest

from repro.arch import Architecture, StorageLevel, toy_glb_architecture
from repro.mapping import Loop, Mapping
from repro.model import compute_access_counts
from repro.problem import ConvLayer, GemmLayer
from repro.problem.gemm import vector_workload


@pytest.fixture
def two_level_arch():
    """DRAM -> one big buffer -> compute (no fanout)."""
    return Architecture(
        name="two-level",
        levels=(
            StorageLevel.build("DRAM"),
            StorageLevel.build("Buf", capacity_words=4096),
        ),
    )


class TestVectorDistribution:
    """The Fig. 4/5 example: elements are conserved at every level."""

    def test_pfm_counts(self, toy_arch, vector100):
        mapping = Mapping.from_blocks(
            [
                ("DRAM", [Loop("D", 1)], []),
                ("GlobalBuffer", [Loop("D", 20)], [Loop("D", 5, spatial=True)]),
                ("PERegister", [], []),
            ]
        )
        counts = compute_access_counts(toy_arch, vector100, mapping)
        for level in range(3):
            assert counts.reads[(level, "X")] == 100
            assert counts.writes[(level, "Y")] == 100

    def test_imperfect_counts_identical(self, toy_arch, vector100):
        mapping = Mapping.from_blocks(
            [
                ("DRAM", [Loop("D", 1)], []),
                ("GlobalBuffer", [Loop("D", 17)], [Loop("D", 6, 4, spatial=True)]),
                ("PERegister", [], []),
            ]
        )
        counts = compute_access_counts(toy_arch, vector100, mapping)
        for level in range(3):
            assert counts.reads[(level, "X")] == 100
            assert counts.writes[(level, "Y")] == 100


class TestGemmTemporalReuse:
    """GEMM M=4, N=3, K=2; DRAM: M4 / Buf: K2, N3 (hand-computed)."""

    @pytest.fixture
    def counts(self, two_level_arch):
        w = GemmLayer("g", m=4, n=3, k=2).workload()
        mapping = Mapping.from_blocks(
            [
                ("DRAM", [Loop("M", 4)], []),
                ("Buf", [Loop("K", 2), Loop("N", 3)], []),
            ]
        )
        return compute_access_counts(two_level_arch, w, mapping)

    def test_a_fetched_once(self, counts):
        assert counts.reads[(0, "A")] == 8
        assert counts.writes[(1, "A")] == 8

    def test_a_register_reuse_across_n(self, counts):
        # N is innermost and irrelevant to A: one Buf read per (m, k).
        assert counts.reads[(1, "A")] == 8

    def test_b_loaded_once_despite_m_outside(self, counts):
        # M is irrelevant to B and has no relevant temporal loop above the
        # Buf boundary inside it -> B persists in Buf across M.
        assert counts.reads[(0, "B")] == 6
        assert counts.writes[(1, "B")] == 6

    def test_b_read_per_mac(self, counts):
        # N (relevant) is innermost: B changes every MAC.
        assert counts.reads[(1, "B")] == 24

    def test_output_updates(self, counts):
        # K sits outside N: psums accumulate in Buf, one update per MAC,
        # first accumulation per element needs no read. Buf reads = 12
        # read-modify-write refills plus 12 final-drain reads to DRAM.
        assert counts.writes[(1, "C")] == 24
        assert counts.reads[(1, "C")] == 12 + 12

    def test_output_final_drain_only(self, counts):
        assert counts.writes[(0, "C")] == 12
        assert counts.reads[(0, "C")] == 0


class TestSpatialMulticastAndScatter:
    """GEMM on the toy GLB arch with M spatial (hand-computed)."""

    @pytest.fixture
    def counts(self, toy_arch):
        w = GemmLayer("g", m=4, n=3, k=2).workload()
        mapping = Mapping.from_blocks(
            [
                ("DRAM", [], []),
                ("GlobalBuffer", [Loop("K", 2)], [Loop("M", 4, spatial=True)]),
                ("PERegister", [Loop("N", 3)], []),
            ]
        )
        return compute_access_counts(toy_arch, w, mapping)

    def test_a_scattered(self, counts):
        # M spatial is relevant to A: each PE gets its own slice; the GLB
        # reads each word once (scatter, no multicast win).
        assert counts.reads[(1, "A")] == 8
        assert counts.writes[(2, "A")] == 8

    def test_b_multicast(self, counts):
        # M spatial is irrelevant to B: the GLB reads B once per word and
        # the network copies it to all 4 PEs.
        assert counts.reads[(1, "B")] == 6
        assert counts.writes[(2, "B")] == 24

    def test_output_accumulates_in_pe(self, counts):
        # K at the GLB is outside the PEs but M-spatial tiles are static:
        # psums stay put, accumulate across K, drain once. The GLB is read
        # only when its completed tile drains to DRAM.
        assert counts.writes[(1, "C")] == 12
        assert counts.reads[(1, "C")] == 12
        assert counts.writes[(0, "C")] == 12
        assert counts.reads[(0, "C")] == 0

    def test_pe_updates_per_mac(self, counts):
        # 24 accumulation writes; reads = 12 RMW + 12 drain-to-GLB reads.
        assert counts.writes[(2, "C")] == 24
        assert counts.reads[(2, "C")] == 12 + 12


class TestSlidingWindowHalo:
    """1-D conv: P tiling refetches the input halo (hand-computed)."""

    @pytest.fixture
    def counts(self, two_level_arch):
        w = ConvLayer("c1d", c=1, m=1, p=4, q=1, r=3, s=1).workload()
        mapping = Mapping.from_blocks(
            [
                ("DRAM", [Loop("P", 2)], []),
                ("Buf", [Loop("P", 2), Loop("R", 3)], []),
            ]
        )
        return compute_access_counts(two_level_arch, w, mapping)

    def test_input_halo_refetched(self, counts):
        # Two P-tiles of extent 2: each window footprint (2-1)+(3-1)+1 = 4,
        # so 8 input elements cross the boundary though H is only 6.
        assert counts.reads[(0, "Inputs")] == 8

    def test_weights_persist_across_p(self, counts):
        # P is irrelevant to weights with no relevant temporal loop above
        # the Buf boundary: fetched once.
        assert counts.reads[(0, "Weights")] == 3

    def test_outputs_written_once(self, counts):
        assert counts.writes[(0, "Outputs")] == 4


class TestRefetchRule:
    """Irrelevant temporal loop with a relevant one inside forces refetch."""

    def test_weights_refetched_when_relevant_inside(self, two_level_arch):
        w = GemmLayer("g", m=4, n=3, k=2).workload()
        # N (irrelevant to A) at DRAM with M (relevant) inside at Buf:
        # A's Buf tile churns inside each N iteration -> refetch 3x.
        mapping = Mapping.from_blocks(
            [
                ("DRAM", [Loop("N", 3), Loop("M", 4)], []),
                ("Buf", [Loop("K", 2)], []),
            ]
        )
        counts = compute_access_counts(two_level_arch, w, mapping)
        assert counts.reads[(0, "A")] == 24  # 8 words x 3 sweeps

    def test_no_refetch_when_relevant_outside(self, two_level_arch):
        w = GemmLayer("g", m=4, n=3, k=2).workload()
        mapping = Mapping.from_blocks(
            [
                ("DRAM", [Loop("M", 4), Loop("N", 3)], []),
                ("Buf", [Loop("K", 2)], []),
            ]
        )
        counts = compute_access_counts(two_level_arch, w, mapping)
        assert counts.reads[(0, "A")] == 8


class TestConservation:
    def test_total_compute_feed_is_mac_count_upper_bound(self, toy_arch):
        # Reads at the innermost keeper never exceed total MACs per tensor.
        w = GemmLayer("g", m=6, n=4, k=5).workload()
        mapping = Mapping.from_blocks(
            [
                ("DRAM", [Loop("M", 6)], []),
                ("GlobalBuffer", [Loop("K", 5)], [Loop("N", 4, spatial=True)]),
                ("PERegister", [], []),
            ]
        )
        counts = compute_access_counts(toy_arch, w, mapping)
        macs = w.total_operations
        for tensor in ("A", "B"):
            assert counts.reads[(2, tensor)] <= macs
        assert counts.writes[(2, "C")] <= macs

"""Unit tests for mapping rendering."""

from repro.mapping import Loop, Mapping, render_mapping
from repro.mapping.render import render_compact


def sample_mapping():
    return Mapping.from_blocks(
        [
            ("DRAM", [Loop("P", 27)], []),
            (
                "GlobalBuffer",
                [Loop("C", 24), Loop("M", 6)],
                [Loop("R", 5, spatial=True), Loop("Q", 14, 13, spatial=True)],
            ),
            ("PEBuffer", [Loop("M", 16), Loop("C", 1)], []),
        ]
    )


class TestRenderMapping:
    def test_contains_level_labels(self):
        text = render_mapping(sample_mapping())
        for name in ("DRAM", "GlobalBuffer", "PEBuffer"):
            assert f"[{name}]" in text

    def test_contains_loops_and_compute(self):
        text = render_mapping(sample_mapping())
        assert "for P in [0, 27)" in text
        assert "parFor Q in [0, 14) last 13" in text
        assert text.strip().endswith("compute()")

    def test_hides_trivial_by_default(self):
        text = render_mapping(sample_mapping())
        assert "for C in [0, 1)" not in text

    def test_show_trivial(self):
        text = render_mapping(sample_mapping(), show_trivial=True)
        assert "for C in [0, 1)" in text

    def test_indentation_increases(self):
        lines = render_mapping(sample_mapping()).splitlines()
        indents = [len(line) - len(line.lstrip()) for line in lines]
        assert indents == sorted(indents)


class TestRenderCompact:
    def test_one_line(self):
        text = render_compact(sample_mapping())
        assert "\n" not in text

    def test_imperfect_loop_annotated(self):
        text = render_compact(sample_mapping())
        assert "Q14/13" in text

    def test_empty_level_dashed(self):
        mapping = Mapping.from_blocks(
            [("DRAM", [Loop("D", 4)], []), ("L1", [], [])]
        )
        assert "L1[-]" in render_compact(mapping)

"""Benchmark regression ledger: normalize, record, compare, CLI gate.

Synthetic payloads exercise the normalization and comparison math with
exact numbers; the repo's real ``BENCH_*.json`` files pin that all three
divergent schemas actually normalize; and the CLI tests nail the exit
codes (0 clean, 1 regression, 10 ledger errors) that ``make
bench-compare`` turns into a CI gate.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.exceptions import BenchLedgerError
from repro.io.journal import Journal
from repro.obs.bench import (
    BenchDelta,
    compare_ledger,
    format_comparison,
    machine_fingerprint,
    normalize_bench_payload,
    read_ledger,
    record_benchmarks,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def batch_payload(throughput=1000.0, scalar=100.0):
    return {
        "benchmark": "batch_eval",
        "cases": {
            "case_a": {
                "batch_mappings_per_sec": throughput,
                "scalar_mappings_per_sec": scalar,
                "speedup": throughput / scalar,
                "num_mappings": 400,  # counter: must not be tracked
            }
        },
    }


def bnb_payload(bnb_s=2.0, exhaustive_s=6.0):
    return {
        "benchmark": "branch_bound",
        "cases": {
            "case_b": {
                "branch_bound_s": bnb_s,
                "exhaustive_s": exhaustive_s,
                "speedup": exhaustive_s / bnb_s,
                "candidates": 446145,
            },
            "seed_stability": {"stable": True},  # no tracked wall-clock
        },
    }


def write_payload(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


class TestNormalize:
    def test_batch_eval_tracks_throughputs_not_counters(self):
        entries = normalize_bench_payload(batch_payload())
        metrics = {e["metric"] for e in entries}
        assert metrics == {
            "batch_mappings_per_sec",
            "scalar_mappings_per_sec",
            "speedup",
        }
        assert all(e["higher_is_better"] for e in entries)
        assert all(e["benchmark"] == "batch_eval" for e in entries)

    def test_branch_bound_wall_clocks_are_lower_is_better(self):
        entries = normalize_bench_payload(bnb_payload())
        directions = {e["metric"]: e["higher_is_better"] for e in entries}
        assert directions == {
            "branch_bound_s": False,
            "exhaustive_s": False,
            "speedup": True,
        }

    def test_case_missing_tracked_metrics_is_skipped(self):
        entries = normalize_bench_payload(bnb_payload())
        assert not any(e["case"] == "seed_stability" for e in entries)

    def test_unknown_benchmark_contributes_nothing(self):
        payload = {"benchmark": "mystery", "cases": {"x": {"speedup": 2.0}}}
        assert normalize_bench_payload(payload) == []

    def test_bool_and_non_numeric_values_skipped(self):
        payload = {
            "benchmark": "batch_eval",
            "cases": {
                "odd": {
                    "batch_mappings_per_sec": True,
                    "scalar_mappings_per_sec": "fast",
                    "speedup": 2.0,
                }
            },
        }
        entries = normalize_bench_payload(payload)
        assert [e["metric"] for e in entries] == ["speedup"]

    def test_real_bench_files_all_normalize(self):
        from repro.io.serde import load_json

        for name in (
            "BENCH_batch_eval.json",
            "BENCH_branch_bound.json",
            "BENCH_branch_bound_parallel.json",
        ):
            path = REPO_ROOT / name
            if not path.exists():
                pytest.skip(f"{name} not present")
            entries = normalize_bench_payload(load_json(path))
            assert entries, name
            assert all(
                isinstance(e["value"], float) and not isinstance(
                    e["value"], bool
                )
                for e in entries
            )


class TestRecord:
    def test_record_shape_and_machine_tag(self, tmp_path):
        source = write_payload(tmp_path, "BENCH_batch_eval.json", batch_payload())
        ledger = tmp_path / "BENCH_HISTORY.jsonl"
        record = record_benchmarks([source], ledger, note="seed run")
        assert record["kind"] == "bench"
        assert record["schema"] == 1
        assert record["sources"] == ["BENCH_batch_eval.json"]
        assert record["note"] == "seed run"
        assert record["machine"]["host"] == machine_fingerprint()["host"]
        assert len(record["entries"]) == 3
        # The ledger round-trips through journal framing.
        stored = read_ledger(ledger)
        assert len(stored) == 1
        assert stored[0]["entries"] == record["entries"]

    def test_record_appends_history(self, tmp_path):
        source = write_payload(tmp_path, "b.json", batch_payload())
        ledger = tmp_path / "ledger.jsonl"
        record_benchmarks([source], ledger)
        record_benchmarks([source], ledger)
        assert len(read_ledger(ledger)) == 2

    def test_record_with_no_tracked_metrics_raises(self, tmp_path):
        source = write_payload(
            tmp_path, "u.json", {"benchmark": "mystery", "cases": {}}
        )
        with pytest.raises(BenchLedgerError):
            record_benchmarks([source], tmp_path / "ledger.jsonl")

    def test_read_ledger_missing_file_and_foreign_kinds(self, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        assert read_ledger(ledger) == []
        Journal(ledger).append({"kind": "campaign", "config": {}})
        source = write_payload(tmp_path, "b.json", batch_payload())
        record_benchmarks([source], ledger)
        assert len(read_ledger(ledger)) == 1


class TestCompare:
    def _ledger(self, tmp_path, *payload_sets):
        """Record one ledger entry per payload set, in order."""
        ledger = tmp_path / "ledger.jsonl"
        for i, payloads in enumerate(payload_sets):
            sources = [
                write_payload(tmp_path, f"p{i}_{j}.json", payload)
                for j, payload in enumerate(payloads)
            ]
            record_benchmarks(sources, ledger)
        return ledger

    def test_fewer_than_two_records_raises(self, tmp_path):
        ledger = self._ledger(tmp_path, [batch_payload()])
        with pytest.raises(BenchLedgerError):
            compare_ledger(ledger)

    def test_clean_run_is_ok(self, tmp_path):
        ledger = self._ledger(
            tmp_path, [batch_payload()], [batch_payload(1050.0, 102.0)]
        )
        comparison = compare_ledger(ledger, threshold=0.2)
        assert comparison.ok
        assert comparison.regressions == []
        assert comparison.same_machine

    def test_throughput_drop_regresses(self, tmp_path):
        ledger = self._ledger(
            tmp_path, [batch_payload(1000.0)], [batch_payload(700.0)]
        )
        comparison = compare_ledger(ledger, threshold=0.2)
        assert not comparison.ok
        keys = {d.key for d in comparison.regressions}
        assert ("batch_eval", "case_a", "batch_mappings_per_sec") in keys

    def test_wall_clock_increase_regresses(self, tmp_path):
        ledger = self._ledger(
            tmp_path, [bnb_payload(bnb_s=2.0)], [bnb_payload(bnb_s=3.0)]
        )
        comparison = compare_ledger(ledger, threshold=0.2)
        regressed = {d.key for d in comparison.regressions}
        assert ("branch_bound", "case_b", "branch_bound_s") in regressed

    def test_wall_clock_decrease_is_improvement(self, tmp_path):
        ledger = self._ledger(
            tmp_path, [bnb_payload(bnb_s=3.0)], [bnb_payload(bnb_s=2.0)]
        )
        comparison = compare_ledger(ledger, threshold=0.2)
        improved = {d.key for d in comparison.improvements}
        assert ("branch_bound", "case_b", "branch_bound_s") in improved
        assert comparison.ok

    def test_threshold_boundary_is_not_regression(self):
        delta = BenchDelta(
            benchmark="b",
            case="c",
            metric="m",
            baseline=100.0,
            current=80.0,
            higher_is_better=True,
            threshold=0.2,
        )
        assert delta.change == pytest.approx(-0.2)
        assert not delta.regressed  # strictly-worse-than-threshold gates
        worse = BenchDelta(
            benchmark="b",
            case="c",
            metric="m",
            baseline=100.0,
            current=79.0,
            higher_is_better=True,
            threshold=0.2,
        )
        assert worse.regressed

    def test_zero_baseline_never_divides(self):
        delta = BenchDelta(
            benchmark="b",
            case="c",
            metric="m",
            baseline=0.0,
            current=5.0,
            higher_is_better=True,
            threshold=0.2,
        )
        assert delta.change == 0.0

    def test_missing_and_added_metrics_reported(self, tmp_path):
        ledger = self._ledger(
            tmp_path,
            [batch_payload(), bnb_payload()],
            [batch_payload()],
        )
        comparison = compare_ledger(ledger)
        assert ("branch_bound", "case_b", "branch_bound_s") in (
            comparison.missing
        )
        assert comparison.added == []

    def test_same_host_baseline_preferred(self, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        journal = Journal(ledger)

        def entry(value):
            return {
                "benchmark": "batch_eval",
                "case": "case_a",
                "metric": "speedup",
                "value": value,
                "higher_is_better": True,
            }

        def record(host, value, when):
            journal.append(
                {
                    "kind": "bench",
                    "time": when,
                    "machine": {"host": host},
                    "sources": ["x"],
                    "entries": [entry(value)],
                }
            )

        record("box-a", 10.0, 1.0)
        record("box-b", 99.0, 2.0)  # other machine, newer: must be skipped
        record(machine_fingerprint()["host"], 99.0, 2.5)
        record(machine_fingerprint()["host"], 10.0, 3.0)
        comparison = compare_ledger(ledger)
        assert comparison.same_machine
        # Baseline is the *same-host* 99.0 record, so 10.0 regresses.
        assert not comparison.ok
        no_pref = compare_ledger(ledger, prefer_same_machine=False)
        assert not no_pref.ok  # previous record outright is also 99.0

    def test_cross_machine_fallback_flagged(self, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        journal = Journal(ledger)
        for host, value in (("elsewhere", 10.0), (machine_fingerprint()["host"], 10.0)):
            journal.append(
                {
                    "kind": "bench",
                    "time": 1.0,
                    "machine": {"host": host},
                    "sources": ["x"],
                    "entries": [
                        {
                            "benchmark": "batch_eval",
                            "case": "case_a",
                            "metric": "speedup",
                            "value": value,
                            "higher_is_better": True,
                        }
                    ],
                }
            )
        comparison = compare_ledger(ledger)
        assert not comparison.same_machine
        text = format_comparison(comparison)
        assert "different machine" in text


class TestFormatComparison:
    def test_table_verdicts_and_summary(self, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        source_good = write_payload(tmp_path, "g.json", batch_payload(1000.0))
        source_bad = write_payload(tmp_path, "b.json", batch_payload(500.0, 200.0))
        record_benchmarks([source_good], ledger)
        record_benchmarks([source_bad], ledger)
        text = format_comparison(compare_ledger(ledger, threshold=0.2))
        assert "REGRESSED" in text
        assert "improved" in text
        assert "batch_eval/case_a/batch_mappings_per_sec" in text
        # batch throughput and speedup both halve-or-worse; scalar doubles.
        assert text.splitlines()[-1] == "3 compared, 2 regressed, 1 improved"


class TestBenchCLI:
    def test_record_then_clean_compare_exits_zero(self, tmp_path, capsys):
        source = write_payload(tmp_path, "BENCH_batch_eval.json", batch_payload())
        ledger = tmp_path / "BENCH_HISTORY.jsonl"
        assert cli_main(
            ["bench", "record", str(source), "--ledger", str(ledger)]
        ) == 0
        out = capsys.readouterr().out
        assert "recorded 3 metric(s)" in out
        assert cli_main(
            ["bench", "record", str(source), "--ledger", str(ledger)]
        ) == 0
        assert cli_main(
            ["bench", "compare", "--ledger", str(ledger)]
        ) == 0
        assert "0 regressed" in capsys.readouterr().out

    def test_regression_exits_one(self, tmp_path, capsys):
        good = write_payload(tmp_path, "good.json", batch_payload(1000.0))
        bad = write_payload(tmp_path, "bad.json", batch_payload(600.0))
        ledger = tmp_path / "ledger.jsonl"
        cli_main(["bench", "record", str(good), "--ledger", str(ledger)])
        cli_main(["bench", "record", str(bad), "--ledger", str(ledger)])
        code = cli_main(["bench", "compare", "--ledger", str(ledger)])
        captured = capsys.readouterr()
        assert code == 1
        assert "REGRESSED" in captured.out
        assert "regression" in captured.err

    def test_tolerant_threshold_passes_same_data(self, tmp_path, capsys):
        good = write_payload(tmp_path, "good.json", batch_payload(1000.0))
        bad = write_payload(tmp_path, "bad.json", batch_payload(600.0))
        ledger = tmp_path / "ledger.jsonl"
        cli_main(["bench", "record", str(good), "--ledger", str(ledger)])
        cli_main(["bench", "record", str(bad), "--ledger", str(ledger)])
        assert cli_main(
            [
                "bench",
                "compare",
                "--ledger",
                str(ledger),
                "--threshold",
                "0.5",
            ]
        ) == 0

    def test_ledger_errors_exit_ten(self, tmp_path, capsys):
        empty = write_payload(
            tmp_path, "u.json", {"benchmark": "mystery", "cases": {}}
        )
        ledger = tmp_path / "ledger.jsonl"
        assert cli_main(
            ["bench", "record", str(empty), "--ledger", str(ledger)]
        ) == 10
        source = write_payload(tmp_path, "b.json", batch_payload())
        cli_main(["bench", "record", str(source), "--ledger", str(ledger)])
        # One record: nothing to compare against.
        assert cli_main(["bench", "compare", "--ledger", str(ledger)]) == 10
        assert "BenchLedgerError" in capsys.readouterr().err

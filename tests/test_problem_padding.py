"""Unit tests for the padding baseline (Section III-B)."""

import pytest

from repro.problem import ConvLayer, pad_dimension
from repro.problem.gemm import vector_workload
from repro.problem.padding import pad_to_multiple


class TestPadDimension:
    def test_pads_up(self):
        result = pad_dimension(vector_workload("v", 113), "D", 16)
        assert result.workload.size("D") == 128

    def test_already_aligned_unchanged(self):
        result = pad_dimension(vector_workload("v", 128), "D", 16)
        assert result.workload.size("D") == 128
        assert result.overcompute_fraction == 0.0

    def test_overcompute_fraction_d113(self):
        # The paper's Fig. 8 discussion: ~12% of computations are padded
        # zeros at D=113 -> 128.
        result = pad_dimension(vector_workload("v", 113), "D", 16)
        assert result.overcompute_fraction == pytest.approx(15 / 128)
        assert 0.11 < result.overcompute_fraction < 0.13

    def test_overcompute_fraction_d127(self):
        # Prime 127 pads by a single element: tiny overhead.
        result = pad_dimension(vector_workload("v", 127), "D", 16)
        assert result.overcompute_fraction == pytest.approx(1 / 128)

    def test_effectual_fraction_complements(self):
        result = pad_dimension(vector_workload("v", 100), "D", 16)
        assert result.effectual_fraction + result.overcompute_fraction == 1.0

    def test_operations_scale(self):
        layer = ConvLayer("l", c=48, m=96, p=27, q=27, r=5, s=5)
        result = pad_dimension(layer.workload(), "Q", 14)
        assert result.padded_operations == result.original_operations // 27 * 28

    def test_rejects_bad_multiple(self):
        with pytest.raises(ValueError):
            pad_dimension(vector_workload("v", 10), "D", 0)


class TestPadToMultiple:
    def test_multiple_dims(self):
        layer = ConvLayer("l", c=48, m=96, p=27, q=27, r=5, s=5)
        result = pad_to_multiple(layer.workload(), {"P": 14, "Q": 14})
        assert result.workload.size("P") == 28
        assert result.workload.size("Q") == 28

    def test_name_suffix_records_padding(self):
        result = pad_to_multiple(vector_workload("v", 100), {"D": 16})
        assert "pad" in result.workload.name

    def test_noop_keeps_name(self):
        result = pad_to_multiple(vector_workload("v", 96), {"D": 16})
        assert result.workload.name == "v"

    def test_rejects_bad_multiple(self):
        with pytest.raises(ValueError):
            pad_to_multiple(vector_workload("v", 10), {"D": -1})

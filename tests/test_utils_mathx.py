"""Unit tests for repro.utils.mathx."""

import math

import pytest

from repro.utils.mathx import (
    balanced_split,
    ceil_div,
    compositions_bounded,
    divisors,
    from_mixed_radix,
    mixed_radix_digits,
    num_ordered_factorizations,
    ordered_factorizations,
    prime_factorization,
    product,
)


class TestProduct:
    def test_empty(self):
        assert product([]) == 1

    def test_values(self):
        assert product([2, 3, 7]) == 42

    def test_single(self):
        assert product([9]) == 9


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(100, 5) == 20

    def test_remainder(self):
        assert ceil_div(100, 6) == 17

    def test_one(self):
        assert ceil_div(1, 16) == 1

    def test_zero_numerator(self):
        assert ceil_div(0, 3) == 0

    def test_rejects_zero_denominator(self):
        with pytest.raises(ValueError):
            ceil_div(5, 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ceil_div(-1, 3)


class TestPrimeFactorization:
    def test_one(self):
        assert prime_factorization(1) == ()

    def test_prime(self):
        assert prime_factorization(127) == ((127, 1),)

    def test_composite(self):
        assert prime_factorization(360) == ((2, 3), (3, 2), (5, 1))

    def test_power_of_two(self):
        assert prime_factorization(4096) == ((2, 12),)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            prime_factorization(0)

    def test_reconstructs(self):
        n = 98280
        rebuilt = product(p**e for p, e in prime_factorization(n))
        assert rebuilt == n


class TestDivisors:
    def test_one(self):
        assert divisors(1) == (1,)

    def test_prime(self):
        assert divisors(13) == (1, 13)

    def test_composite_sorted(self):
        assert divisors(12) == (1, 2, 3, 4, 6, 12)

    def test_hundred(self):
        assert divisors(100) == (1, 2, 4, 5, 10, 20, 25, 50, 100)

    def test_all_divide(self):
        n = 720
        assert all(n % d == 0 for d in divisors(n))

    def test_count_matches_formula(self):
        n = 360  # 2^3 * 3^2 * 5 -> 4*3*2 = 24 divisors
        assert len(divisors(n)) == 24


class TestOrderedFactorizations:
    def test_single_part(self):
        assert list(ordered_factorizations(12, 1)) == [(12,)]

    def test_two_parts(self):
        pairs = set(ordered_factorizations(6, 2))
        assert pairs == {(1, 6), (2, 3), (3, 2), (6, 1)}

    def test_products_correct(self):
        for combo in ordered_factorizations(24, 3):
            assert product(combo) == 24

    def test_count_matches_closed_form(self):
        for n in (1, 7, 12, 100, 128):
            for parts in (1, 2, 3, 4):
                assert (
                    len(list(ordered_factorizations(n, parts)))
                    == num_ordered_factorizations(n, parts)
                )

    def test_order_matters(self):
        combos = list(ordered_factorizations(4, 2))
        assert (1, 4) in combos and (4, 1) in combos

    def test_rejects_zero_parts(self):
        with pytest.raises(ValueError):
            list(ordered_factorizations(4, 0))


class TestNumOrderedFactorizations:
    def test_prime_two_parts(self):
        assert num_ordered_factorizations(7, 2) == 2

    def test_one(self):
        assert num_ordered_factorizations(1, 5) == 1

    def test_hundred_three_parts(self):
        # 100 = 2^2 * 5^2 -> C(4,2)^2 = 36
        assert num_ordered_factorizations(100, 3) == 36


class TestMixedRadix:
    def test_simple_base(self):
        assert mixed_radix_digits(13, [10]) == (3, 1)

    def test_mixed(self):
        digits = mixed_radix_digits(99, [6, 17])
        assert digits == (3, 16, 0)

    def test_roundtrip(self):
        radices = [6, 17]
        for value in range(0, 200):
            digits = mixed_radix_digits(value, radices)
            assert from_mixed_radix(digits, radices) == value

    def test_no_radices(self):
        assert mixed_radix_digits(42, []) == (42,)

    def test_digit_ranges(self):
        digits = mixed_radix_digits(999, [7, 4, 3])
        for digit, radix in zip(digits, [7, 4, 3]):
            assert 0 <= digit < radix

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            mixed_radix_digits(-1, [2])

    def test_rejects_bad_radix(self):
        with pytest.raises(ValueError):
            mixed_radix_digits(5, [0])

    def test_from_mixed_radix_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            from_mixed_radix((1, 2), [2, 3])

    def test_from_mixed_radix_rejects_digit_overflow(self):
        with pytest.raises(ValueError):
            from_mixed_radix((5, 0), [4])


class TestCompositionsBounded:
    def test_zero_parts(self):
        assert list(compositions_bounded(0, 5)) == [()]

    def test_enumerates_all_tuples(self):
        tuples = list(compositions_bounded(2, 3))
        assert len(tuples) == 9
        assert len(set(tuples)) == 9
        assert all(len(t) == 2 and all(1 <= x <= 3 for x in t) for t in tuples)

    def test_count_is_bound_to_the_parts(self):
        for parts in range(4):
            for bound in range(1, 5):
                assert len(list(compositions_bounded(parts, bound))) == bound**parts

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            list(compositions_bounded(-1, 3))
        with pytest.raises(ValueError):
            list(compositions_bounded(2, 0))


class TestBalancedSplit:
    def test_even(self):
        assert balanced_split(12, 3) == (4, 4, 4)

    def test_uneven(self):
        assert balanced_split(13, 3) == (5, 4, 4)

    def test_sum_preserved(self):
        for n in range(5, 30):
            for parts in range(1, 6):
                if n >= parts:
                    assert sum(balanced_split(n, parts)) == n

    def test_rejects_too_many_parts(self):
        with pytest.raises(ValueError):
            balanced_split(2, 3)

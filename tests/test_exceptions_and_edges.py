"""Edge-case and error-path tests across the package."""

import pytest

from repro.exceptions import (
    InvalidMappingError,
    MapspaceError,
    ReproError,
    SearchError,
    SpecError,
)


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (SpecError, InvalidMappingError, MapspaceError, SearchError):
            assert issubclass(exc, ReproError)
        assert issubclass(ReproError, Exception)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise SpecError("x")


class TestDegenerateWorkloads:
    def test_all_ones_workload(self, toy_arch):
        """A 1-MAC problem maps and evaluates without special-casing."""
        from repro.core import find_best_mapping
        from repro.problem import GemmLayer

        workload = GemmLayer("unit", 1, 1, 1).workload()
        result = find_best_mapping(
            toy_arch, workload, kind="ruby-s", seed=0,
            max_evaluations=20, patience=None,
        )
        assert result.best is not None
        assert result.best.cycles == 1
        assert result.best.utilization == pytest.approx(1 / 6)

    def test_single_dim_equal_to_fanout(self, toy_arch):
        from repro.core import find_best_mapping
        from repro.problem.gemm import vector_workload

        workload = vector_workload("v6", 6)
        result = find_best_mapping(
            toy_arch, workload, kind="pfm", strategy="exhaustive"
        )
        assert result.best.cycles == 1  # all six elements in one step

    def test_dimension_of_one_needs_no_loop(self, toy_arch):
        from repro.mapping import Loop, Mapping, is_valid_mapping
        from repro.problem import GemmLayer

        workload = GemmLayer("thin", m=4, n=1, k=1).workload()
        mapping = Mapping.from_blocks(
            [
                ("DRAM", [Loop("M", 4)], []),
                ("GlobalBuffer", [], []),
                ("PERegister", [], []),
            ]
        )
        assert is_valid_mapping(mapping, toy_arch, workload)


class TestLargeDimensions:
    def test_prime_4099_chain_math(self):
        """Large primes exercise the mixed-radix path without overflow."""
        from repro.mapspace import assign_remainders
        from repro.mapping import Loop, chain_trip_count

        bounds = [5, 7, 128]  # covers up to 4480
        remainders = assign_remainders(4099, bounds)
        loops = [Loop("D", b, r) for b, r in zip(bounds, remainders)]
        assert chain_trip_count(loops) == 4099

    def test_huge_bound_products_are_exact_ints(self):
        from repro.mapping import Loop, chain_trip_count

        loops = [Loop("D", 10**6), Loop("D", 10**6), Loop("D", 10**6)]
        assert chain_trip_count(loops) == 10**18  # no float rounding

    def test_search_on_large_gemm_is_tractable(self):
        from repro.arch import eyeriss_like
        from repro.core import find_best_mapping
        from repro.problem import GemmLayer

        workload = GemmLayer("big", m=4096, n=512, k=4096).workload()
        result = find_best_mapping(
            eyeriss_like(), workload, kind="ruby-s", seed=0,
            max_evaluations=150, patience=None,
        )
        assert result.best is not None
        assert result.best.valid


class TestRenderEdgeCases:
    def test_empty_mapping_renders(self):
        from repro.mapping import Mapping, render_mapping
        from repro.mapping.render import render_compact

        mapping = Mapping.from_blocks([("DRAM", [], [])])
        assert "compute()" in render_mapping(mapping)
        assert render_compact(mapping) == "DRAM[-]"


class TestErrorPayloadsAndExitCodes:
    def test_exit_codes_distinct_per_class(self):
        from repro.exceptions import (
            CampaignError,
            EvaluationError,
            JobTimeoutError,
        )

        classes = (
            SpecError, InvalidMappingError, MapspaceError, SearchError,
            EvaluationError, JobTimeoutError, CampaignError,
        )
        codes = [cls.exit_code for cls in classes]
        assert codes == [2, 3, 4, 5, 6, 7, 8]
        assert len(set(codes)) == len(codes)
        assert ReproError.exit_code == 1

    def test_payload_carries_type_message_exit_code(self):
        error = MapspaceError("no factorization")
        payload = error.payload()
        assert payload == {
            "type": "MapspaceError",
            "message": "no factorization",
            "exit_code": 4,
            "http_status": 400,
        }

    def test_worker_error_payload_and_pickle(self):
        import pickle

        from repro.exceptions import WorkerError

        error = WorkerError(3, 12345, "ValueError: boom")
        assert error.index == 3 and error.seed == 12345
        assert "worker job 3" in str(error) and "12345" in str(error)
        payload = error.payload()
        assert payload["index"] == 3 and payload["seed"] == 12345
        rebuilt = pickle.loads(pickle.dumps(error))
        assert (rebuilt.index, rebuilt.seed) == (3, 12345)
        assert isinstance(rebuilt, SearchError)

    def test_timeout_and_crash_errors_pickle(self):
        import pickle

        from repro.exceptions import JobCrashError, JobTimeoutError

        timeout = pickle.loads(
            pickle.dumps(JobTimeoutError("job-x", 2.5, attempt=1))
        )
        assert timeout.job_id == "job-x"
        assert timeout.timeout_s == 2.5
        assert timeout.payload()["exit_code"] == 7

        crash = pickle.loads(
            pickle.dumps(JobCrashError("job-y", exitcode=86, attempt=0))
        )
        assert crash.job_id == "job-y"
        assert crash.exitcode == 86
        assert crash.payload()["exit_code"] == 8

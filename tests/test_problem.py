"""Unit tests for the problem package (tensors, workloads, conv, gemm)."""

import pytest

from repro.exceptions import SpecError
from repro.problem import (
    ConvLayer,
    GemmLayer,
    ProjectionTerm,
    TensorSpec,
    Workload,
    conv_workload,
    gemm_workload,
)
from repro.problem.gemm import vector_workload
from repro.problem.tensor import simple_tensor


class TestProjectionTerm:
    def test_defaults(self):
        term = ProjectionTerm("C")
        assert term.coefficient == 1

    def test_rejects_nonpositive_coefficient(self):
        with pytest.raises(ValueError):
            ProjectionTerm("C", 0)


class TestTensorSpec:
    def test_relevant_dims(self):
        weights = simple_tensor("W", ("M", "C", "R", "S"))
        assert weights.relevant_dims == {"M", "C", "R", "S"}

    def test_tile_footprint_unit_ranks(self):
        weights = simple_tensor("W", ("M", "C"))
        assert weights.tile_footprint({"M": 4, "C": 3}) == 12

    def test_tile_footprint_missing_dims_default_one(self):
        weights = simple_tensor("W", ("M", "C"))
        assert weights.tile_footprint({"M": 4}) == 4

    def test_sliding_window_footprint(self):
        inputs = TensorSpec(
            name="I",
            ranks=((ProjectionTerm("P", 2), ProjectionTerm("R", 1)),),
        )
        # stride 2 window: 2*(p-1) + 1*(r-1) + 1
        assert inputs.tile_footprint({"P": 3, "R": 3}) == 2 * 2 + 2 + 1

    def test_full_size(self):
        inputs = TensorSpec(
            name="I",
            ranks=(
                (ProjectionTerm("C"),),
                (ProjectionTerm("P"), ProjectionTerm("R")),
            ),
        )
        assert inputs.full_size({"C": 3, "P": 5, "R": 3}) == 3 * 7

    def test_rejects_empty_rank(self):
        with pytest.raises(ValueError):
            TensorSpec(name="T", ranks=((),))

    def test_rejects_bad_extent(self):
        tensor = simple_tensor("T", ("M",))
        with pytest.raises(ValueError):
            tensor.tile_footprint({"M": 0})


class TestWorkload:
    def test_create_and_validate(self, small_gemm):
        assert small_gemm.total_operations == 12 * 10 * 8

    def test_dim_lookup(self, small_gemm):
        assert small_gemm.size("M") == 12
        with pytest.raises(KeyError):
            small_gemm.size("Z")

    def test_output_unique(self, small_gemm):
        assert small_gemm.output.name == "C"
        assert {t.name for t in small_gemm.inputs} == {"A", "B"}

    def test_tensor_lookup(self, small_gemm):
        assert small_gemm.tensor("A").relevant_dims == {"M", "K"}
        with pytest.raises(KeyError):
            small_gemm.tensor("nope")

    def test_rejects_no_output(self):
        with pytest.raises(SpecError):
            Workload.create(
                "bad", {"M": 2}, [simple_tensor("A", ("M",))]
            )

    def test_rejects_two_outputs(self):
        with pytest.raises(SpecError):
            Workload.create(
                "bad",
                {"M": 2},
                [
                    simple_tensor("A", ("M",), is_output=True),
                    simple_tensor("B", ("M",), is_output=True),
                ],
            )

    def test_rejects_unknown_projection_dim(self):
        with pytest.raises(SpecError):
            Workload.create(
                "bad",
                {"M": 2},
                [
                    simple_tensor("A", ("Z",)),
                    simple_tensor("B", ("M",), is_output=True),
                ],
            )

    def test_rejects_zero_size_dim(self):
        with pytest.raises(SpecError):
            Workload.create(
                "bad",
                {"M": 0},
                [simple_tensor("B", ("M",), is_output=True)],
            )

    def test_with_dims(self, small_gemm):
        bigger = small_gemm.with_dims({"M": 16}, suffix="_pad")
        assert bigger.size("M") == 16
        assert bigger.size("N") == 10
        assert bigger.name.endswith("_pad")

    def test_describe_mentions_sizes(self, small_gemm):
        text = small_gemm.describe()
        assert "M=12" in text and "MACs" in text


class TestConvLayer:
    def test_dim_sizes(self):
        layer = ConvLayer("l", c=3, m=8, p=5, q=5, r=3, s=3)
        assert layer.dim_sizes == {
            "N": 1, "C": 3, "M": 8, "P": 5, "Q": 5, "R": 3, "S": 3,
        }

    def test_input_sizes_stride_one(self):
        layer = ConvLayer("l", p=5, r=3)
        assert layer.input_height == 7

    def test_input_sizes_stride_two(self):
        layer = ConvLayer("l", p=112, r=7, stride_h=2)
        assert layer.input_height == (112 - 1) * 2 + 7

    def test_workload_structure(self):
        w = ConvLayer("l", c=4, m=8, p=6, q=6, r=3, s=3).workload()
        assert w.tensor("Weights").relevant_dims == {"M", "C", "R", "S"}
        assert w.tensor("Inputs").relevant_dims == {"N", "C", "P", "Q", "R", "S"}
        assert w.tensor("Outputs").relevant_dims == {"N", "M", "P", "Q"}
        assert w.output.name == "Outputs"

    def test_workload_input_footprint_uses_stride(self):
        layer = ConvLayer("l", c=1, m=1, p=10, q=10, r=3, s=3,
                          stride_h=2, stride_w=2)
        w = layer.workload()
        assert w.tensor_size("Inputs") == layer.input_height * layer.input_width

    def test_macs(self):
        w = ConvLayer("l", c=2, m=3, p=4, q=5, r=2, s=2).workload()
        assert w.total_operations == 2 * 3 * 4 * 5 * 2 * 2

    def test_rejects_bad_shape(self):
        with pytest.raises(SpecError):
            ConvLayer("l", c=0)


class TestGemm:
    def test_structure(self):
        w = GemmLayer("g", m=4, n=5, k=6).workload()
        assert w.tensor("A").relevant_dims == {"M", "K"}
        assert w.tensor("B").relevant_dims == {"K", "N"}
        assert w.output.relevant_dims == {"M", "N"}

    def test_macs(self):
        assert GemmLayer("g", 4, 5, 6).workload().total_operations == 120

    def test_rejects_bad_shape(self):
        with pytest.raises(SpecError):
            GemmLayer("g", 0, 1, 1)

    def test_vector_workload(self):
        w = vector_workload("v", 100)
        assert w.total_operations == 100
        assert w.size("D") == 100
        assert w.output.name == "Y"

"""Integration tests reproducing the paper's worked examples end to end.

These are the fast, deterministic counterparts of the benchmark harnesses:
each pins one of the paper's qualitative claims with small search budgets.
"""

import pytest

from repro.arch import eyeriss_like, toy_glb_architecture, toy_linear_architecture
from repro.core import find_best_mapping
from repro.mapping import Loop, Mapping
from repro.mapspace import MapspaceKind, count_mapspace_sizes
from repro.mapspace.constraints import eyeriss_row_stationary
from repro.model import Evaluator
from repro.problem import pad_dimension
from repro.problem.gemm import vector_workload
from repro.zoo import alexnet_conv2, alexnet_conv2_strip_mined, table1_workload


class TestFig5ToyExample:
    """The 100-elements-over-6-PEs walkthrough of Figs. 4 and 5."""

    def test_ruby_mapping_saves_three_cycles(self, toy_arch, vector100):
        evaluator = Evaluator(toy_arch, vector100)
        pfm_best = find_best_mapping(
            toy_arch, vector100, kind="pfm", strategy="exhaustive"
        )
        ruby_manual = Mapping.from_blocks(
            [
                ("DRAM", [Loop("D", 1)], []),
                ("GlobalBuffer", [Loop("D", 17)], [Loop("D", 6, 4, spatial=True)]),
                ("PERegister", [], []),
            ]
        )
        ruby_eval = evaluator.evaluate(ruby_manual)
        assert ruby_eval.cycles == 17
        assert pfm_best.best.cycles >= 20
        assert ruby_eval.cycles == pfm_best.best.cycles - 3

    def test_ruby_s_search_finds_the_17_cycle_schedule(self, toy_arch, vector100):
        result = find_best_mapping(
            toy_arch, vector100, kind="ruby-s", objective="delay",
            seed=0, max_evaluations=2000, patience=None,
        )
        assert result.best.cycles == 17


class TestTableOne:
    """Mapspace sizes: PFM < Ruby-S << Ruby-T <= Ruby, growing with D."""

    def test_size_ordering_holds_across_dimensions(self, linear_arch9):
        for size in (12, 100, 360):
            sizes = count_mapspace_sizes(
                linear_arch9, table1_workload(size), count_valid=False
            )
            assert (
                sizes[MapspaceKind.PFM].raw
                < sizes[MapspaceKind.RUBY_S].raw
                < sizes[MapspaceKind.RUBY].raw
            )
            assert sizes[MapspaceKind.RUBY_T].raw <= sizes[MapspaceKind.RUBY].raw

    def test_ruby_growth_is_superlinear_vs_ruby_s(self, linear_arch9):
        small = count_mapspace_sizes(
            linear_arch9, table1_workload(64), count_valid=False
        )
        big = count_mapspace_sizes(
            linear_arch9, table1_workload(512), count_valid=False
        )
        ruby_growth = big[MapspaceKind.RUBY].raw / small[MapspaceKind.RUBY].raw
        ruby_s_growth = big[MapspaceKind.RUBY_S].raw / small[MapspaceKind.RUBY_S].raw
        assert ruby_growth > ruby_s_growth


class TestFig8PaddingStory:
    """Ruby-S vs padding on a 16-PE linear array."""

    @pytest.fixture
    def arch16(self):
        return toy_linear_architecture(16)

    def evaluate(self, arch, size, kind, pad=False, seed=0):
        workload = vector_workload(f"d{size}", size)
        effectual = workload.total_operations
        if pad:
            padded = pad_dimension(workload, "D", 16)
            workload = padded.workload
        result = find_best_mapping(
            arch, workload, kind=kind, seed=seed,
            max_evaluations=1500, patience=400,
        )
        return result.best, effectual

    def test_prime_127_pfm_cannot_parallelize(self, arch16):
        best, _ = self.evaluate(arch16, 127, "pfm")
        # 127 prime: no spatial factor fits 16 PEs -> fully serial.
        assert best.cycles == 127

    def test_prime_127_padding_rescues_pfm(self, arch16):
        best, effectual = self.evaluate(arch16, 127, "pfm", pad=True)
        assert best.cycles == 8  # 128 / 16
        # but one MAC is wasted on the padded zero.
        assert best.energy_breakdown_pj["compute"] > 0

    def test_prime_127_ruby_s_matches_padding_without_waste(self, arch16):
        best, _ = self.evaluate(arch16, 127, "ruby-s")
        assert best.cycles == 8  # ceil(127/16)

    def test_d113_padding_overhead(self, arch16):
        # 113 -> 128 pads ~12% zeros; Ruby-S runs exactly 113 MACs in the
        # same 8 cycles, so its EDP is strictly better.
        ruby_best, _ = self.evaluate(arch16, 113, "ruby-s")
        padded_best, _ = self.evaluate(arch16, 113, "pfm", pad=True)
        assert ruby_best.cycles == padded_best.cycles == 8
        assert ruby_best.edp < padded_best.edp
        assert ruby_best.energy_pj < padded_best.energy_pj


class TestFig9AlexNet:
    """Handcrafted strip mining vs PFM vs Ruby-S on Eyeriss."""

    @staticmethod
    def search(arch, workload, kind, objective, seeds=(1, 2, 3)):
        """Best-of-seeds search; the paper's runs use far larger budgets
        (3000-patience across 24 threads), so we de-noise small budgets by
        taking the best of a few independent starts."""
        constraints = eyeriss_row_stationary()
        results = [
            find_best_mapping(
                arch, workload, kind=kind, objective=objective, seed=seed,
                max_evaluations=3000, patience=1000, constraints=constraints,
            ).best
            for seed in seeds
        ]
        return min(results, key=lambda e: e.metric(objective))

    @pytest.fixture(scope="class")
    def setting(self):
        arch = eyeriss_like()
        workload = alexnet_conv2()
        evaluator = Evaluator(arch, workload)
        handcrafted = evaluator.evaluate(alexnet_conv2_strip_mined(arch))
        pfm = self.search(arch, workload, "pfm", "edp")
        ruby_s = self.search(arch, workload, "ruby-s", "edp")
        return arch, workload, handcrafted, pfm, ruby_s

    def test_handcrafted_beats_pfm_utilization(self, setting):
        arch, workload, handcrafted, _, _ = setting
        pfm_fast = self.search(arch, workload, "pfm", "delay")
        assert handcrafted.utilization > pfm_fast.utilization

    def test_ruby_s_matches_handcrafted_utilization(self, setting):
        # Utilization is a latency claim: compare delay-optimized searches.
        arch, workload, handcrafted, _, _ = setting
        ruby_fast = self.search(arch, workload, "ruby-s", "delay")
        assert ruby_fast.utilization >= handcrafted.utilization * 0.95

    def test_ruby_s_beats_handcrafted_edp(self, setting):
        # Paper: 16% EDP decrease and 10% energy decrease vs handcrafted.
        _, _, handcrafted, _, ruby_s = setting
        assert ruby_s.edp < handcrafted.edp

    def test_ruby_s_at_least_matches_pfm_edp(self, setting):
        _, _, _, pfm, ruby_s = setting
        assert ruby_s.edp <= pfm.edp * 1.02


class TestMisalignedLayersOnEyeriss:
    """The Fig. 10 headline: pointwise layers benefit most from Ruby-S."""

    def test_pointwise_layer_improves(self):
        from repro.problem import ConvLayer

        arch = eyeriss_like()
        workload = ConvLayer("pw", c=512, m=128, p=28, q=28).workload()
        constraints = eyeriss_row_stationary()

        def best(kind):
            return min(
                (
                    find_best_mapping(
                        arch, workload, kind=kind, seed=seed,
                        max_evaluations=2500, patience=800,
                        constraints=constraints,
                    ).best
                    for seed in (5, 6)
                ),
                key=lambda e: e.edp,
            )

        assert best("ruby-s").edp <= best("pfm").edp

"""Unit tests for mapping-level bypass (the Section II-D optimization)."""

import random

import pytest

from repro.arch import Architecture, StorageLevel, toy_glb_architecture
from repro.exceptions import SpecError
from repro.mapping import Loop, Mapping, is_valid_mapping
from repro.model import Evaluator, compute_access_counts
from repro.model.dataflow import keeper_levels
from repro.problem import GemmLayer
from repro.problem.gemm import vector_workload


def passthrough_mapping(bypass=()):
    return Mapping.from_blocks(
        [
            ("DRAM", [Loop("D", 20)], []),
            ("GlobalBuffer", [], [Loop("D", 5, spatial=True)]),
            ("PERegister", [], []),
        ],
        bypass=bypass,
    )


class TestBypassStructure:
    def test_bypass_recorded(self):
        mapping = passthrough_mapping([("GlobalBuffer", "X")])
        assert mapping.bypasses("GlobalBuffer", "X")
        assert not mapping.bypasses("GlobalBuffer", "Y")

    def test_outermost_bypass_rejected(self):
        with pytest.raises(SpecError):
            passthrough_mapping([("DRAM", "X")])

    def test_unknown_level_rejected(self):
        with pytest.raises(SpecError):
            passthrough_mapping([("Nope", "X")])

    def test_with_bypass_copies(self):
        mapping = passthrough_mapping()
        updated = mapping.with_bypass([("GlobalBuffer", "X")])
        assert updated.bypasses("GlobalBuffer", "X")
        assert not mapping.bypasses("GlobalBuffer", "X")

    def test_canonical_key_distinguishes_bypass(self):
        a = passthrough_mapping()
        b = passthrough_mapping([("GlobalBuffer", "X")])
        assert a.canonical_key() != b.canonical_key()


class TestBypassSemantics:
    def test_keeper_levels_respect_bypass(self, toy_arch):
        mapping = passthrough_mapping([("GlobalBuffer", "X")])
        assert keeper_levels(toy_arch, "X", mapping) == [0, 2]
        assert keeper_levels(toy_arch, "Y", mapping) == [0, 1, 2]

    def test_bypassed_tensor_skips_level_traffic(self, toy_arch, vector100):
        direct = passthrough_mapping([("GlobalBuffer", "X")])
        counts = compute_access_counts(toy_arch, vector100, direct)
        assert (1, "X") not in counts.writes
        assert counts.reads[(0, "X")] == 100  # DRAM feeds PEs directly
        # Y still stages through the GLB.
        assert counts.writes[(1, "Y")] == 100

    def test_bypass_frees_capacity(self, vector100):
        # A GLB too small for both tensors becomes valid when one bypasses.
        tiny = toy_glb_architecture(num_pes=5, glb_bytes=256)  # 128 words
        blocks = [
            ("DRAM", [], []),
            ("GlobalBuffer", [Loop("D", 20)], [Loop("D", 5, spatial=True)]),
            ("PERegister", [], []),
        ]
        full = Mapping.from_blocks(blocks)
        assert not is_valid_mapping(full, tiny, vector100)
        bypassed = Mapping.from_blocks(blocks, bypass=[("GlobalBuffer", "X")])
        assert is_valid_mapping(bypassed, tiny, vector100)

    def test_bypass_changes_energy(self, toy_arch, vector100):
        evaluator = Evaluator(toy_arch, vector100)
        staged = evaluator.evaluate(passthrough_mapping())
        direct = evaluator.evaluate(
            passthrough_mapping([("GlobalBuffer", "X")])
        )
        assert staged.valid and direct.valid
        # Skipping the GLB removes its read+write energy for X.
        assert direct.energy_pj < staged.energy_pj


class TestBypassExploration:
    def test_mapspace_samples_bypass(self, toy_arch, vector100):
        from repro.mapspace.generator import MapSpace, MapspaceKind

        space = MapSpace(
            toy_arch, vector100, MapspaceKind.RUBY_S, explore_bypass=True
        )
        rng = random.Random(0)
        saw_bypass = False
        for _ in range(100):
            mapping = space.sample(rng)
            if mapping.bypass:
                saw_bypass = True
                for level_name, _ in mapping.bypass:
                    assert level_name != "DRAM"
        assert saw_bypass

    def test_default_no_bypass(self, toy_arch, vector100):
        from repro.mapspace.generator import MapSpace, MapspaceKind

        space = MapSpace(toy_arch, vector100, MapspaceKind.RUBY_S)
        rng = random.Random(0)
        assert all(not space.sample(rng).bypass for _ in range(50))

    def test_search_with_bypass_finds_improvement(self, vector100):
        # On an arch with an expensive middle buffer, bypassing X (which
        # gets no reuse on this streaming workload) wins.
        from repro.mapspace.generator import MapSpace, MapspaceKind
        from repro.search import RandomSearch

        arch = toy_glb_architecture(num_pes=5, glb_bytes=64 * 1024)
        evaluator = Evaluator(arch, vector100)
        base_space = MapSpace(arch, vector100, MapspaceKind.RUBY_S)
        bypass_space = MapSpace(
            arch, vector100, MapspaceKind.RUBY_S, explore_bypass=True
        )
        base = RandomSearch(
            base_space, evaluator, max_evaluations=600, patience=None, seed=1
        ).run()
        with_bypass = RandomSearch(
            bypass_space, evaluator, max_evaluations=600, patience=None, seed=1
        ).run()
        assert with_bypass.best_metric <= base.best_metric

"""Mapper-service concurrency tests: coalescing under parallel clients,
journal integrity, monotone per-job progress, and warm-cache reuse.

Determinism under concurrency comes from construction, not sleeps: a
gate holds the single worker on a blocker job while client threads race
their submissions in, so "identical requests coalesce to one job" is a
hard invariant here, not a timing hope.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.io.journal import Journal
from repro.obs import progress_owner
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import ProgressTracker, active_trackers
from repro.service import MappingService

pytestmark = pytest.mark.service


def post_json(url, payload):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8")
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def get_json(url):
    with urllib.request.urlopen(url) as response:
        return json.loads(response.read())


def spec(seed, max_evaluations=300, **overrides):
    payload = {
        "arch": "toy16",
        "workload": {"gemm": {"m": 48, "n": 12, "k": 24}},
        "max_evaluations": max_evaluations,
        "patience": None,
        "seed": seed,
    }
    payload.update(overrides)
    return payload


def wait_all_terminal(url, job_ids, timeout_s=120.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        states = {
            job["job_id"]: job["state"]
            for job in get_json(url + "/v1/jobs")["jobs"]
        }
        if all(
            states.get(job_id) in ("ok", "failed", "cancelled")
            for job_id in job_ids
        ):
            return states
        time.sleep(0.05)
    raise AssertionError(f"jobs never finished: {states}")


class TestConcurrentClients:
    BLOCKER_SEED = 999_999

    def test_racing_identical_requests_coalesce_to_one_job(self, tmp_path):
        registry = MetricsRegistry()
        journal_path = str(tmp_path / "service.jsonl")
        service = MappingService(
            registry, workers=1, journal_path=journal_path
        )
        with service:
            manager = service.manager
            original = manager._execute
            gate = threading.Event()

            def gated(job):
                if job.spec.config.seed == self.BLOCKER_SEED:
                    assert gate.wait(timeout=60)
                return original(job)

            manager._execute = gated
            _, blocker = post_json(
                service.url + "/v1/search", spec(self.BLOCKER_SEED)
            )
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                job = get_json(
                    f"{service.url}/v1/jobs/{blocker['job_id']}"
                )
                if job["state"] == "running":
                    break
                time.sleep(0.01)
            assert job["state"] == "running"

            # 12 identical + 6 distinct submissions race in from threads
            # while the worker is pinned, so every outcome is forced:
            # the identical twelve MUST share one job id.
            payloads = [spec(7)] * 12 + [spec(seed) for seed in range(6)]
            results = [None] * len(payloads)

            def client(index):
                results[index] = post_json(
                    service.url + "/v1/search", payloads[index]
                )

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(len(payloads))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert all(status == 202 for status, _ in results)

            identical_ids = {
                body["job_id"] for _, body in results[:12]
            }
            distinct_ids = {
                body["job_id"] for _, body in results[12:]
            }
            assert len(identical_ids) == 1
            assert len(distinct_ids) == 6
            assert distinct_ids.isdisjoint(identical_ids)

            gate.set()
            all_ids = (
                {blocker["job_id"]} | identical_ids | distinct_ids
            )
            states = wait_all_terminal(service.url, all_ids)
            assert all(states[job_id] == "ok" for job_id in all_ids)

            stats = get_json(service.url + "/v1/stats")
            assert stats["coalesced"] == 11
            # Distinct jobs shared one warm (arch, workload) evaluator:
            # random search re-draws duplicates, so the shared cache must
            # have answered a meaningful share of lookups.
            assert stats["pool"]["size"] == 1
            assert stats["pool"]["cache"]["hits"] > 0

        # Journal integrity after the storm: every line parses, one
        # request record per distinct job, exactly one terminal record
        # per accepted job, no torn interleavings.
        records = Journal(journal_path).read()
        requests = [r for r in records if r.get("kind") == "request"]
        terminals = [r for r in records if r.get("kind") == "job"]
        assert {r["job_id"] for r in requests} == all_ids
        assert len(requests) == len(all_ids)
        terminal_ids = [r["job_id"] for r in terminals]
        assert sorted(terminal_ids) == sorted(all_ids)
        assert len(set(terminal_ids)) == len(terminal_ids)

    def test_identical_rerun_after_completion_hits_warm_cache(self):
        registry = MetricsRegistry()
        service = MappingService(registry, workers=1)
        with service:
            # Scalar path: it stores EVERY evaluation in the shared cache
            # (the batch path deliberately stores only improvements), so
            # the rerun's hit-rate floor is a hard guarantee.
            payload = spec(31, max_evaluations=400, use_batch=False)
            _, first = post_json(service.url + "/v1/search", payload)
            states = wait_all_terminal(service.url, [first["job_id"]])
            assert states[first["job_id"]] == "ok"
            # The job finished, so an identical request is NEW work —
            # but it replays the same seeded draws against the warm
            # cache, so (almost) every evaluation is a hit and the
            # result is bit-identical.
            _, second = post_json(service.url + "/v1/search", payload)
            assert second["coalesced"] is False
            assert second["job_id"] != first["job_id"]
            wait_all_terminal(service.url, [second["job_id"]])
            first_body = get_json(
                f"{service.url}/v1/jobs/{first['job_id']}"
            )
            second_body = get_json(
                f"{service.url}/v1/jobs/{second['job_id']}"
            )
            assert (
                first_body["result"]["best"]["edp"]
                == second_body["result"]["best"]["edp"]
            )
            cache = second_body["result"]["stats"].get("cache")
            assert cache is not None
            assert cache["hit_rate"] is not None
            assert cache["hit_rate"] >= 0.5

    def test_progress_is_monotone_and_owned_per_job(self):
        registry = MetricsRegistry()
        service = MappingService(registry, workers=2)
        with service:
            _, body = post_json(
                service.url + "/v1/search",
                spec(77, max_evaluations=60_000),
            )
            job_id = body["job_id"]
            observed = []
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                progress = get_json(
                    f"{service.url}/v1/jobs/{job_id}/progress"
                )
                for snapshot in progress["searches"]:
                    assert snapshot["owner"] == job_id
                    observed.append(snapshot["completed_units"])
                if progress["state"] in ("ok", "failed"):
                    break
                time.sleep(0.01)
            assert progress["state"] == "ok"
            assert observed == sorted(observed), (
                "per-job completed_units went backwards"
            )


class TestProgressOwnershipIsolation:
    """Regression: concurrent searches must not cross-contaminate the
    shared ``search.progress_fraction`` gauge or each other's
    ``/progress`` views (the pre-service obs server keyed everything on
    the single ambient scope)."""

    def test_active_trackers_filter_by_owner(self):
        with progress_owner("job-a"):
            tracker_a = ProgressTracker(driver="random", total_units=10)
        with progress_owner("job-b"):
            tracker_b = ProgressTracker(driver="random", total_units=10)
        unowned = ProgressTracker(driver="random", total_units=10)
        try:
            owned_a = active_trackers(owner="job-a")
            assert tracker_a in owned_a
            assert tracker_b not in owned_a
            assert unowned not in owned_a
            everything = active_trackers()
            assert {tracker_a, tracker_b, unowned} <= set(everything)
        finally:
            tracker_a.finish()
            tracker_b.finish()
            unowned.finish()

    def test_owned_trackers_publish_job_labelled_gauges(self):
        from repro.obs import obs_scope

        registry = MetricsRegistry()
        with obs_scope(registry=registry):
            with progress_owner("job-x"):
                tracker_x = ProgressTracker(driver="random", total_units=10)
            with progress_owner("job-y"):
                tracker_y = ProgressTracker(driver="random", total_units=10)
            tracker_x.advance(5)
            tracker_y.advance(2)
            gauge = registry.gauge("search.progress_fraction")
            assert gauge.value(driver="random", job="job-x") == 0.5
            assert gauge.value(driver="random", job="job-y") == 0.2
            # Two concurrent owned searches never collapse onto the
            # single unowned series.
            assert gauge.value(driver="random") is None
            tracker_x.finish()
            tracker_y.finish()

    def test_unowned_tracker_keeps_legacy_single_series(self):
        from repro.obs import obs_scope

        registry = MetricsRegistry()
        with obs_scope(registry=registry):
            tracker = ProgressTracker(driver="random", total_units=10)
            tracker.advance(4)
            gauge = registry.gauge("search.progress_fraction")
            assert gauge.value(driver="random") == 0.4
            tracker.finish()

"""Regression tests for mapping signatures and the evaluation cache.

The cache is only admissible if (a) equal signatures imply equal cost and
(b) cache hits are observationally identical to cold evaluations. These
tests pin both properties, the LRU mechanics, and search-result parity
with the cache on vs. off.
"""

import random

import pytest

from repro.arch import toy_glb_architecture
from repro.exceptions import SearchError
from repro.mapping.loop import Loop
from repro.mapping.nest import Mapping
from repro.mapspace import ruby_s_mapspace
from repro.model import EvaluationCache, Evaluator
from repro.problem.gemm import vector_workload
from repro.search.random_search import RandomSearch


def _base_mapping() -> Mapping:
    return Mapping.from_blocks(
        [
            ("DRAM", [Loop("C", 4), Loop("M", 2)], []),
            (
                "GLB",
                [Loop("C", 2)],
                [Loop("M", 2, spatial=True), Loop("P", 3, spatial=True)],
            ),
        ]
    )


class TestMappingSignature:
    def test_stable_across_calls_and_copies(self):
        a = _base_mapping()
        b = _base_mapping()
        assert a.signature() == a.signature()
        assert a.signature() == b.signature()
        assert hash(a.signature()) == hash(b.signature())

    def test_trivial_perfect_loops_are_dropped(self):
        noisy = Mapping.from_blocks(
            [
                ("DRAM", [Loop("P", 1), Loop("C", 4), Loop("M", 2)], []),
                (
                    "GLB",
                    [Loop("C", 2), Loop("R", 1)],
                    [Loop("M", 2, spatial=True), Loop("P", 3, spatial=True)],
                ),
            ]
        )
        assert noisy.signature() == _base_mapping().signature()

    def test_perfect_spatial_order_is_canonicalized(self):
        swapped = Mapping.from_blocks(
            [
                ("DRAM", [Loop("C", 4), Loop("M", 2)], []),
                (
                    "GLB",
                    [Loop("C", 2)],
                    [Loop("P", 3, spatial=True), Loop("M", 2, spatial=True)],
                ),
            ]
        )
        assert swapped.signature() == _base_mapping().signature()

    def test_imperfect_spatial_order_is_preserved(self):
        # Reordering an imperfect chain changes its coverage (the remainder
        # applies to the globally-last pass), so these must NOT collide.
        def with_spatial(spatial):
            return Mapping.from_blocks(
                [("DRAM", [Loop("C", 4)], []), ("GLB", [], spatial)]
            )

        a = with_spatial(
            [Loop("M", 7, spatial=True), Loop("M", 5, 2, spatial=True)]
        )
        b = with_spatial(
            [Loop("M", 5, 2, spatial=True), Loop("M", 7, spatial=True)]
        )
        assert a.signature() != b.signature()

    def test_distinguishes_bounds_remainders_and_bypass(self):
        base = _base_mapping()
        other_bound = Mapping.from_blocks(
            [
                ("DRAM", [Loop("C", 8), Loop("M", 2)], []),
                (
                    "GLB",
                    [Loop("C", 2)],
                    [Loop("M", 2, spatial=True), Loop("P", 3, spatial=True)],
                ),
            ]
        )
        imperfect = Mapping.from_blocks(
            [
                ("DRAM", [Loop("C", 4, 3), Loop("M", 2)], []),
                (
                    "GLB",
                    [Loop("C", 2)],
                    [Loop("M", 2, spatial=True), Loop("P", 3, spatial=True)],
                ),
            ]
        )
        bypassed = base.with_bypass([("GLB", "Inputs")])
        signatures = {
            base.signature(),
            other_bound.signature(),
            imperfect.signature(),
            bypassed.signature(),
        }
        assert len(signatures) == 4


class TestEvaluationCache:
    def test_hit_miss_counters(self):
        cache = EvaluationCache(max_entries=4)
        assert cache.get("a") is None
        cache.put("a", "eval-a")
        assert cache.get("a") == "eval-a"
        assert cache.misses == 1
        assert cache.hits == 1
        assert cache.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = EvaluationCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a": now "b" is least recently used
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_clear_keeps_counters(self):
        cache = EvaluationCache()
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["size"] == 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(SearchError):
            EvaluationCache(max_entries=0)


@pytest.fixture
def setting():
    arch = toy_glb_architecture(6, 1024)
    workload = vector_workload("v100", 100)
    return arch, workload, ruby_s_mapspace(arch, workload)


class TestEvaluatorCaching:
    def test_hit_returns_identical_metrics(self, setting):
        arch, workload, space = setting
        cache = EvaluationCache()
        cached = Evaluator(arch, workload, cache=cache)
        plain = Evaluator(arch, workload)
        rng = random.Random(5)
        for _ in range(50):
            mapping = space.sample(rng)
            first = cached.evaluate(mapping)
            second = cached.evaluate(mapping)
            reference = plain.evaluate(mapping)
            assert second.valid == reference.valid
            if reference.valid:
                assert second.energy_pj == reference.energy_pj
                assert second.cycles == reference.cycles
                assert second.edp == reference.edp
            assert first.mapping == mapping and second.mapping == mapping
        # Each mapping is re-evaluated once (>= 50 hits); duplicate draws
        # among the 50 samples add more hits and reduce misses.
        assert cache.hits >= 50
        assert cache.misses <= 50

    def test_invalid_evaluations_are_cached_too(self):
        arch = toy_glb_architecture(num_pes=6, glb_bytes=4)  # nothing fits
        workload = vector_workload("v100", 100)
        space = ruby_s_mapspace(arch, workload)
        cache = EvaluationCache()
        evaluator = Evaluator(arch, workload, cache=cache)
        mapping = space.sample(random.Random(0))
        a = evaluator.evaluate(mapping)
        b = evaluator.evaluate(mapping)
        assert not a.valid and not b.valid
        assert a.violations == b.violations
        assert cache.hits == 1

    def test_equivalent_mapping_hit_carries_requested_mapping(self, setting):
        arch, workload, _ = setting
        cache = EvaluationCache()
        evaluator = Evaluator(arch, workload, cache=cache)
        plain = Mapping.from_blocks(
            [
                ("DRAM", [Loop("D", 100)], []),
                ("GlobalBuffer", [], []),
                ("PERegister", [], []),
            ]
        )
        noisy = Mapping.from_blocks(
            [
                ("DRAM", [Loop("D", 100)], []),
                ("GlobalBuffer", [Loop("D", 1)], []),
                ("PERegister", [], []),
            ]
        )
        assert plain != noisy
        assert plain.signature() == noisy.signature()
        reference = evaluator.evaluate(plain)
        hit = evaluator.evaluate(noisy)
        assert cache.hits == 1
        assert hit.mapping == noisy  # not the equivalent mapping priced first
        assert hit.valid == reference.valid
        assert hit.energy_pj == reference.energy_pj


class TestSearchParityWithCache:
    def test_random_search_identical_with_and_without_cache(self, setting):
        arch, workload, space = setting
        with_cache = RandomSearch(
            space,
            Evaluator(arch, workload, cache=EvaluationCache()),
            max_evaluations=400,
            patience=None,
            seed=123,
        ).run()
        without_cache = RandomSearch(
            space,
            Evaluator(arch, workload),
            max_evaluations=400,
            patience=None,
            seed=123,
        ).run()
        assert with_cache.best_metric == without_cache.best_metric
        assert with_cache.best.mapping == without_cache.best.mapping
        assert with_cache.num_valid == without_cache.num_valid
        assert [p.evaluations for p in with_cache.curve] == [
            p.evaluations for p in without_cache.curve
        ]

    def test_stats_payload(self, setting):
        arch, workload, space = setting
        result = RandomSearch(
            space,
            Evaluator(arch, workload, cache=EvaluationCache()),
            max_evaluations=200,
            patience=None,
            seed=9,
        ).run()
        assert result.stats["evals_per_sec"] > 0
        assert result.stats["elapsed_s"] > 0
        cache_stats = result.stats["cache"]
        assert cache_stats["hits"] + cache_stats["misses"] == 200
        assert 0.0 <= cache_stats["hit_rate"] <= 1.0

    def test_hit_rate_none_when_no_lookups(self, setting):
        """A cache that saw zero lookups reports hit_rate None, not 0.0.

        Zero would claim "every lookup missed"; None says the rate is
        unknowable because there were no lookups to score.
        """
        from repro.search.result import throughput_stats

        arch, workload, _ = setting
        cache = EvaluationCache()
        Evaluator(arch, workload, cache=cache)  # attached, never consulted
        stats = throughput_stats(0, 0.5, cache=cache)
        assert stats["cache"]["hits"] == 0
        assert stats["cache"]["misses"] == 0
        assert stats["cache"]["hit_rate"] is None

    def test_hit_rate_none_with_shared_cache_baseline(self, setting):
        """Per-run deltas of zero lookups also yield hit_rate None."""
        from repro.search.result import throughput_stats

        arch, workload, space = setting
        cache = EvaluationCache()
        RandomSearch(
            space,
            Evaluator(arch, workload, cache=cache),
            max_evaluations=50,
            patience=None,
            seed=1,
            use_batch=False,
        ).run()
        # A second "run" that reuses the warm cache but performs no
        # lookups: the baseline swallows the prior run's counts.
        stats = throughput_stats(
            0, 0.1, cache=cache, cache_baseline=(cache.hits, cache.misses)
        )
        assert stats["cache"]["hit_rate"] is None

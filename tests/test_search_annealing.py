"""Unit tests for the simulated-annealing search."""

import pytest

from repro.exceptions import SearchError
from repro.mapspace import ruby_s_mapspace
from repro.search import RandomSearch, SimulatedAnnealing


class TestSimulatedAnnealing:
    def test_finds_valid_mapping(self, toy_arch, vector100, toy_evaluator):
        space = ruby_s_mapspace(toy_arch, vector100)
        result = SimulatedAnnealing(
            space, toy_evaluator, steps=200, seed=0
        ).run()
        assert result.best is not None and result.best.valid

    def test_deterministic(self, toy_arch, vector100, toy_evaluator):
        space = ruby_s_mapspace(toy_arch, vector100)
        a = SimulatedAnnealing(space, toy_evaluator, steps=150, seed=3).run()
        b = SimulatedAnnealing(space, toy_evaluator, steps=150, seed=3).run()
        assert a.best_metric == b.best_metric

    def test_curve_monotone(self, toy_arch, vector100, toy_evaluator):
        space = ruby_s_mapspace(toy_arch, vector100)
        result = SimulatedAnnealing(space, toy_evaluator, steps=300, seed=1).run()
        metrics = [p.best_metric for p in result.curve]
        assert metrics == sorted(metrics, reverse=True)

    def test_competitive_with_random(self, toy_arch, vector100, toy_evaluator):
        space = ruby_s_mapspace(toy_arch, vector100)
        annealed = SimulatedAnnealing(
            space, toy_evaluator, steps=400, restarts=2, seed=5
        ).run()
        rand = RandomSearch(
            space, toy_evaluator,
            max_evaluations=annealed.num_evaluated, patience=None, seed=5,
        ).run()
        assert annealed.best_metric <= rand.best_metric * 1.15

    def test_restarts_counted(self, toy_arch, vector100, toy_evaluator):
        space = ruby_s_mapspace(toy_arch, vector100)
        single = SimulatedAnnealing(
            space, toy_evaluator, steps=100, restarts=1, seed=0
        ).run()
        double = SimulatedAnnealing(
            space, toy_evaluator, steps=100, restarts=2, seed=0
        ).run()
        assert double.num_evaluated > single.num_evaluated

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"steps": 0},
            {"cooling": 0.0},
            {"cooling": 1.5},
            {"initial_temperature": 0.0},
            {"restarts": 0},
        ],
    )
    def test_rejects_bad_params(self, toy_arch, vector100, toy_evaluator, kwargs):
        space = ruby_s_mapspace(toy_arch, vector100)
        with pytest.raises(SearchError):
            SimulatedAnnealing(space, toy_evaluator, **kwargs)

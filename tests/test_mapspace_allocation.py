"""Unit tests for per-dimension allocation and remainder assignment."""

import random

import pytest

from repro.exceptions import MapspaceError
from repro.mapping import Loop, chain_trip_count
from repro.mapspace import DimAllocator, assign_remainders, build_slots
from repro.mapspace.slots import Slot


def chain_loops(chain, slots):
    """Materialize a DimChain as loops for coverage checking."""
    return [
        Loop(chain.dim, b, r, spatial=slot.spatial)
        for b, r, slot in zip(chain.bounds, chain.remainders, slots)
    ]


class TestAssignRemainders:
    def test_perfect_chain(self):
        assert assign_remainders(100, [1, 20, 5]) == (1, 20, 5)

    def test_paper_fig5(self):
        # bounds outer->inner (DRAM 1, GLB 17, spatial 6) covering 100:
        # remainders (1, 17, 4) — exactly the paper's example.
        assert assign_remainders(100, [1, 17, 6]) == (1, 17, 4)

    def test_remainders_within_bounds(self):
        for bounds in ([3, 7, 5], [4, 2, 4, 2], [1, 1, 100]):
            remainders = assign_remainders(47, bounds)
            for r, b in zip(remainders, bounds):
                assert 1 <= r <= b

    def test_coverage_exact(self):
        for size in (1, 7, 27, 100, 127):
            for bounds in ([size], [2, (size + 1) // 2], [1, 5, 30]):
                try:
                    remainders = assign_remainders(size, bounds)
                except MapspaceError:
                    continue
                loops = [Loop("D", b, r) for b, r in zip(bounds, remainders)]
                assert chain_trip_count(loops) == size

    def test_insufficient_bounds_rejected(self):
        with pytest.raises(MapspaceError):
            assign_remainders(100, [2, 5, 5])  # covers at most 50

    def test_empty_bounds_size_one(self):
        assert assign_remainders(1, []) == ()

    def test_empty_bounds_size_two_rejected(self):
        with pytest.raises(MapspaceError):
            assign_remainders(2, [])

    def test_size_one_any_bounds(self):
        assert assign_remainders(1, [4, 4]) == (1, 1)


def make_allocator(linear_arch9, spatial_imperfect, temporal_imperfect):
    slots = build_slots(linear_arch9)
    return slots, DimAllocator(
        slots,
        spatial_imperfect=spatial_imperfect,
        temporal_imperfect=temporal_imperfect,
    )


class TestSampleChain:
    @pytest.mark.parametrize("si,ti", [(False, False), (True, False),
                                       (False, True), (True, True)])
    def test_coverage_always_exact(self, linear_arch9, si, ti):
        slots, allocator = make_allocator(linear_arch9, si, ti)
        rng = random.Random(7)
        for size in (3, 9, 27, 100, 127):
            for _ in range(50):
                budgets = {i: s.fanout_cap for i, s in enumerate(slots) if s.spatial}
                chain = allocator.sample_chain("D", size, rng, budgets)
                loops = chain_loops(chain, slots)
                assert chain_trip_count(loops) == size

    def test_pfm_bounds_are_divisor_chains(self, linear_arch9):
        slots, allocator = make_allocator(linear_arch9, False, False)
        rng = random.Random(3)
        for _ in range(100):
            budgets = {i: s.fanout_cap for i, s in enumerate(slots) if s.spatial}
            chain = allocator.sample_chain("D", 100, rng, budgets)
            assert all(r == b for b, r in zip(chain.bounds, chain.remainders))
            product = 1
            for b in chain.bounds:
                product *= b
            assert product == 100

    def test_ruby_s_temporal_loops_perfect(self, linear_arch9):
        slots, allocator = make_allocator(linear_arch9, True, False)
        rng = random.Random(5)
        saw_imperfect_spatial = False
        for _ in range(300):
            budgets = {i: s.fanout_cap for i, s in enumerate(slots) if s.spatial}
            chain = allocator.sample_chain("D", 100, rng, budgets)
            for slot, b, r in zip(slots, chain.bounds, chain.remainders):
                if not slot.spatial:
                    assert r == b, "Ruby-S must keep temporal loops perfect"
                elif r != b:
                    saw_imperfect_spatial = True
        assert saw_imperfect_spatial

    def test_ruby_t_spatial_loops_perfect(self, linear_arch9):
        slots, allocator = make_allocator(linear_arch9, False, True)
        rng = random.Random(5)
        saw_imperfect_temporal = False
        for _ in range(300):
            budgets = {i: s.fanout_cap for i, s in enumerate(slots) if s.spatial}
            chain = allocator.sample_chain("D", 100, rng, budgets)
            for slot, b, r in zip(slots, chain.bounds, chain.remainders):
                if slot.spatial:
                    assert r == b, "Ruby-T must keep spatial loops perfect"
                elif r != b:
                    saw_imperfect_temporal = True
        assert saw_imperfect_temporal

    def test_spatial_bound_respects_budget(self, linear_arch9):
        slots, allocator = make_allocator(linear_arch9, True, True)
        rng = random.Random(11)
        spatial_offset = next(i for i, s in enumerate(slots) if s.spatial)
        for _ in range(200):
            budgets = {spatial_offset: 4}
            chain = allocator.sample_chain("D", 100, rng, budgets)
            assert chain.bounds[spatial_offset] <= 4

    def test_budget_mutated_after_use(self, linear_arch9):
        slots, allocator = make_allocator(linear_arch9, True, False)
        rng = random.Random(2)
        spatial_offset = next(i for i, s in enumerate(slots) if s.spatial)
        budgets = {spatial_offset: 9}
        chain = allocator.sample_chain("D", 100, rng, budgets)
        used = chain.bounds[spatial_offset]
        assert budgets[spatial_offset] == 9 // used

    def test_prime_dimension_ruby_s_can_fill_array(self, linear_arch9):
        # D = 127 (prime): PFM can only put 1 or 127 spatially; 127 > 9, so
        # PFM never parallelizes. Ruby-S can use all 9 PEs.
        slots, allocator = make_allocator(linear_arch9, True, False)
        spatial_offset = next(i for i, s in enumerate(slots) if s.spatial)
        rng = random.Random(0)
        spatial_bounds = set()
        for _ in range(500):
            budgets = {spatial_offset: 9}
            chain = allocator.sample_chain("D", 127, rng, budgets)
            spatial_bounds.add(chain.bounds[spatial_offset])
        assert 9 in spatial_bounds

        _, pfm = make_allocator(linear_arch9, False, False)
        for _ in range(500):
            budgets = {spatial_offset: 9}
            chain = pfm.sample_chain("D", 127, rng, budgets)
            assert chain.bounds[spatial_offset] == 1


class TestEnumerateChains:
    def test_pfm_count_matches_factorizations(self, linear_arch9):
        slots, allocator = make_allocator(linear_arch9, False, False)
        chains = list(allocator.enumerate_chains("D", 12))
        # Ordered factorizations of 12 into 3 slots, spatial slot <= 9:
        # total 3-part ordered factorizations = 18, minus those with
        # spatial factor 12 (1 way: (1,12,1)).
        assert len(chains) == 17

    def test_all_enumerated_cover_exactly(self, linear_arch9):
        slots, allocator = make_allocator(linear_arch9, True, False)
        for chain in allocator.enumerate_chains("D", 20):
            loops = chain_loops(chain, slots)
            assert chain_trip_count(loops) == 20

    def test_imperfect_superset_of_perfect(self, linear_arch9):
        slots, pfm = make_allocator(linear_arch9, False, False)
        _, ruby = make_allocator(linear_arch9, True, True)
        pfm_bounds = {c.bounds for c in pfm.enumerate_chains("D", 24)}
        ruby_bounds = {c.bounds for c in ruby.enumerate_chains("D", 24)}
        assert pfm_bounds <= ruby_bounds
        assert len(ruby_bounds) > len(pfm_bounds)

    def test_spatial_cap_override(self, linear_arch9):
        slots, allocator = make_allocator(linear_arch9, True, False)
        spatial_offset = next(i for i, s in enumerate(slots) if s.spatial)
        chains = list(
            allocator.enumerate_chains("D", 30, spatial_caps={spatial_offset: 2})
        )
        assert all(c.bounds[spatial_offset] <= 2 for c in chains)


class TestAllocatorConstruction:
    def test_rejects_spatial_first_slot(self):
        bad = [Slot(level_index=0, level_name="L", spatial=True, fanout_cap=4)]
        with pytest.raises(MapspaceError):
            DimAllocator(bad, True, True)

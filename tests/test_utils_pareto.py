"""Unit tests for repro.utils.pareto."""

from repro.utils.pareto import (
    ParetoPoint,
    frontier_dominates,
    hypervolume_2d,
    pareto_frontier,
)


def P(x, y, **payload):
    return ParetoPoint(x=x, y=y, payload=payload)


class TestDominates:
    def test_strict(self):
        assert P(1, 1).dominates(P(2, 2))

    def test_one_axis(self):
        assert P(1, 2).dominates(P(2, 2))

    def test_equal_does_not_dominate(self):
        assert not P(1, 1).dominates(P(1, 1))

    def test_tradeoff_does_not_dominate(self):
        assert not P(1, 3).dominates(P(2, 2))
        assert not P(2, 2).dominates(P(1, 3))


class TestParetoFrontier:
    def test_empty(self):
        assert pareto_frontier([]) == []

    def test_single(self):
        point = P(1, 1)
        assert pareto_frontier([point]) == [point]

    def test_removes_dominated(self):
        points = [P(1, 5), P(2, 3), P(3, 4), P(4, 1)]
        frontier = pareto_frontier(points)
        assert [(p.x, p.y) for p in frontier] == [(1, 5), (2, 3), (4, 1)]

    def test_sorted_by_x(self):
        points = [P(4, 1), P(1, 5), P(2, 3)]
        frontier = pareto_frontier(points)
        xs = [p.x for p in frontier]
        assert xs == sorted(xs)

    def test_all_on_frontier(self):
        points = [P(1, 4), P(2, 3), P(3, 2), P(4, 1)]
        assert len(pareto_frontier(points)) == 4

    def test_duplicate_points_kept_once(self):
        points = [P(1, 1), P(1, 1)]
        assert len(pareto_frontier(points)) == 1

    def test_payload_preserved(self):
        frontier = pareto_frontier([P(1, 1, shape="14x12")])
        assert frontier[0].payload["shape"] == "14x12"


class TestFrontierDominates:
    def test_lower_frontier_dominates(self):
        challenger = [P(1, 4), P(3, 1)]
        incumbent = [P(1, 5), P(3, 2)]
        assert frontier_dominates(challenger, incumbent)

    def test_equal_frontier_dominates_weakly(self):
        points = [P(1, 4), P(3, 1)]
        assert frontier_dominates(points, points)

    def test_higher_frontier_does_not_dominate(self):
        challenger = [P(1, 5), P(3, 2)]
        incumbent = [P(1, 4), P(3, 1)]
        assert not frontier_dominates(challenger, incumbent)

    def test_partial_coverage_fails(self):
        challenger = [P(2, 1)]  # cheap region uncovered
        incumbent = [P(1, 4), P(3, 2)]
        assert not frontier_dominates(challenger, incumbent)


class TestHypervolume:
    def test_empty(self):
        assert hypervolume_2d([], P(10, 10)) == 0.0

    def test_single_point(self):
        volume = hypervolume_2d([P(2, 3)], P(10, 10))
        assert volume == (10 - 2) * (10 - 3)

    def test_point_beyond_reference_ignored(self):
        assert hypervolume_2d([P(11, 1)], P(10, 10)) == 0.0

    def test_staircase(self):
        volume = hypervolume_2d([P(1, 5), P(5, 1)], P(10, 10))
        # staircase: [1,5)x(10-5) + [5,10)x(10-1)
        assert volume == 4 * 5 + 5 * 9

    def test_better_frontier_bigger_volume(self):
        reference = P(10, 10)
        worse = hypervolume_2d([P(3, 3)], reference)
        better = hypervolume_2d([P(2, 2)], reference)
        assert better > worse

"""Unit tests for Loop (remaindered loops)."""

import pytest

from repro.exceptions import SpecError
from repro.mapping import Loop


class TestLoop:
    def test_default_remainder_is_bound(self):
        loop = Loop("C", 5)
        assert loop.remainder == 5
        assert loop.is_perfect

    def test_explicit_remainder(self):
        loop = Loop("C", 6, 4, spatial=True)
        assert not loop.is_perfect
        assert loop.remainder == 4

    def test_remainder_equal_bound_is_perfect(self):
        assert Loop("C", 17, 17).is_perfect

    def test_trivial(self):
        assert Loop("C", 1).is_trivial
        assert not Loop("C", 2).is_trivial

    def test_as_perfect(self):
        loop = Loop("C", 6, 4, spatial=True, axis=1)
        perfect = loop.as_perfect()
        assert perfect.is_perfect
        assert perfect.bound == 6
        assert perfect.spatial and perfect.axis == 1

    def test_rejects_zero_bound(self):
        with pytest.raises(SpecError):
            Loop("C", 0)

    def test_rejects_remainder_above_bound(self):
        with pytest.raises(SpecError):
            Loop("C", 4, 5)

    def test_rejects_zero_remainder(self):
        with pytest.raises(SpecError):
            Loop("C", 4, 0)

    def test_rejects_empty_dim(self):
        with pytest.raises(SpecError):
            Loop("", 4)

    def test_rejects_bad_axis(self):
        with pytest.raises(SpecError):
            Loop("C", 4, spatial=True, axis=2)

    def test_str_perfect_temporal(self):
        assert str(Loop("C", 5)) == "for C in [0, 5)"

    def test_str_imperfect_spatial(self):
        assert str(Loop("D", 6, 4, spatial=True)) == "parFor D in [0, 6) last 4"

    def test_frozen(self):
        loop = Loop("C", 5)
        with pytest.raises(AttributeError):
            loop.bound = 6

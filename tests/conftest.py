"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.arch import (
    eyeriss_like,
    simba_like,
    toy_glb_architecture,
    toy_linear_architecture,
)
from repro.model import Evaluator
from repro.problem import ConvLayer, GemmLayer
from repro.problem.gemm import vector_workload


@pytest.fixture
def rng():
    return random.Random(1234)


@pytest.fixture
def toy_arch():
    """The Fig. 4/5 toy: DRAM -> 1 KiB GLB -> 6 storage-less PEs."""
    return toy_glb_architecture(num_pes=6, glb_bytes=1024)


@pytest.fixture
def linear_arch9():
    """The Table I toy: DRAM -> 9 PEs with 1 KiB scratchpads."""
    return toy_linear_architecture(9)


@pytest.fixture
def eyeriss():
    return eyeriss_like()


@pytest.fixture
def simba():
    return simba_like()


@pytest.fixture
def vector100():
    """The 100-element distribution problem of Figs. 4 and 5."""
    return vector_workload("v100", 100)


@pytest.fixture
def small_conv():
    return ConvLayer("small_conv", c=8, m=16, p=6, q=6, r=3, s=3).workload()


@pytest.fixture
def small_gemm():
    return GemmLayer("small_gemm", m=12, n=10, k=8).workload()


@pytest.fixture
def toy_evaluator(toy_arch, vector100):
    return Evaluator(toy_arch, vector100)

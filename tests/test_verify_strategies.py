"""Tests for the shared verification case generators."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.mapping.chains import chain_coverage
from repro.mapspace.generator import MapspaceKind
from repro.verify.strategies import (
    DIM_SIZE_POOL,
    VECTOR_SIZE_POOL,
    VerifyCase,
    adversarial_cases,
    eq5_chain,
    preset_architecture,
    preset_architecture_names,
    random_case,
    random_workload,
    verify_cases,
)


class TestEq5Chain:
    @given(
        size=st.integers(min_value=1, max_value=10_000),
        inner=st.integers(min_value=1, max_value=128),
    )
    @settings(max_examples=200, deadline=None)
    def test_coverage_identity(self, size, inner):
        outer, inner_b, remainder = eq5_chain(size, inner)
        assert (outer - 1) * inner_b + remainder == size
        assert 1 <= remainder <= inner_b
        assert inner_b <= size

    def test_paper_example(self):
        # 97 over bound-6 spatial: 17 passes, last one 1 wide.
        assert eq5_chain(97, 6) == (17, 6, 1)
        # Exact division collapses to perfect (R = P).
        assert eq5_chain(100, 5) == (20, 5, 5)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            eq5_chain(0, 3)
        with pytest.raises(ValueError):
            eq5_chain(5, 0)


class TestPresets:
    def test_all_presets_build(self):
        rng = random.Random(0)
        for name in preset_architecture_names():
            arch = preset_architecture(name, rng)
            assert len(arch.levels) >= 2

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError):
            preset_architecture("tpu-v9")

    def test_toy_shapes_vary_with_rng(self):
        shapes = {
            tuple(
                level.capacity_words
                for level in preset_architecture(
                    "toy-glb", random.Random(seed)
                ).levels
            )
            for seed in range(20)
        }
        assert len(shapes) > 1


class TestRandomWorkload:
    def test_seed_determinism(self):
        a = random_workload(random.Random(7))
        b = random_workload(random.Random(7))
        assert a == b

    def test_sim_friendly_caps_sizes(self):
        for seed in range(30):
            workload = random_workload(random.Random(seed), sim_friendly=True)
            if len(workload.dims) == 1:
                assert workload.dim_sizes["D"] in VECTOR_SIZE_POOL
            else:
                assert all(
                    size <= max(VECTOR_SIZE_POOL)
                    for size in workload.dim_sizes.values()
                )

    def test_draws_cover_the_pool(self):
        kinds = {
            len(random_workload(random.Random(seed)).dims)
            for seed in range(40)
        }
        assert {1, 3} <= kinds or {1, 6} <= kinds  # vector plus gemm/conv


class TestRandomCase:
    def test_seed_determinism(self):
        a = random_case(random.Random(3), index=3)
        b = random_case(random.Random(3), index=3)
        assert a.name == b.name
        assert a.mapping == b.mapping
        assert a.workload == b.workload

    def test_sim_bias_extremes(self):
        for seed in range(15):
            toy = random_case(random.Random(seed), sim_bias=1.0)
            assert toy.arch.name.startswith("toy-")
            preset = random_case(random.Random(seed), sim_bias=0.0)
            assert preset.arch.name.startswith(("eyeriss", "simba"))

    def test_sources_are_tagged(self):
        sources = {
            random_case(random.Random(seed)).source for seed in range(200)
        }
        assert "sampled" in sources
        assert any(s.startswith("adversarial:") for s in sources)


class TestAdversarialCases:
    def test_structure_and_coverage_valid(self):
        # Capacity validity is deliberately not guaranteed (validity
        # *agreement* across paths is itself checked downstream), but the
        # handcrafted chains must be structurally sound and Eq. 5-exact.
        for case in adversarial_cases(random.Random(0)):
            assert isinstance(case, VerifyCase)
            structure = [nest.level_name for nest in case.mapping.levels]
            assert structure == [level.name for level in case.arch.levels]
            for dim, size in case.workload.dim_sizes.items():
                loops = [
                    p.loop
                    for p in case.mapping.placed_loops()
                    if p.loop.dim == dim
                ]
                assert chain_coverage(loops) == size, (case.name, dim)

    def test_corner_taxonomy_present(self):
        names = {case.name for case in adversarial_cases(random.Random(0))}
        assert {
            "adv:prime-spatial",
            "adv:r1-temporal",
            "adv:perfect-collapse",
            "adv:imperfect-spatial-gemm",
            "adv:bypass-combo",
            "adv:conv-sliding-window",
        } <= names

    def test_bypass_combo_has_bypass(self):
        by_name = {c.name: c for c in adversarial_cases(random.Random(0))}
        assert by_name["adv:bypass-combo"].mapping.bypass


class TestHypothesisLayer:
    @given(case=verify_cases())
    @settings(max_examples=20, deadline=None)
    def test_verify_cases_strategy_builds(self, case):
        assert isinstance(case, VerifyCase)
        assert case.kind in set(MapspaceKind)
        assert case.workload.dim_sizes

    def test_pools_exercise_primes(self):
        assert {7, 11, 13} <= set(DIM_SIZE_POOL)
        assert 97 in VECTOR_SIZE_POOL

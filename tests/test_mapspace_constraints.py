"""Dedicated unit tests for the constraint system."""

import random

import pytest

from repro.exceptions import SpecError
from repro.mapspace import ConstraintSet, build_slots
from repro.mapspace.constraints import eyeriss_row_stationary, no_constraints
from repro.mapspace.generator import MapSpace, MapspaceKind


class TestConstraintSet:
    def test_build_freezes_sets(self):
        constraints = ConstraintSet.build(
            spatial_dims={"L": {"C", "M"}},
            axis_dims={"L": ({"Q"}, {"R"})},
            temporal_dims={"L": {"K"}},
        )
        assert constraints.allowed_spatial("L") == frozenset({"C", "M"})
        assert constraints.allowed_on_axis("L", 0) == frozenset({"Q"})
        assert constraints.allowed_on_axis("L", 1) == frozenset({"R"})
        assert constraints.allowed_temporal("L") == frozenset({"K"})

    def test_missing_entries_mean_unconstrained(self):
        constraints = no_constraints()
        assert constraints.allowed_spatial("L") is None
        assert constraints.allowed_on_axis("L", 0) is None
        assert constraints.allowed_temporal("L") is None
        assert constraints.permutation("L") is None

    def test_spatial_cap_clamps_to_hardware(self):
        constraints = ConstraintSet.build(max_spatial={"L": 100})
        assert constraints.spatial_cap("L", 12) == 12
        constraints = ConstraintSet.build(max_spatial={"L": 4})
        assert constraints.spatial_cap("L", 12) == 4

    def test_spatial_cap_rejects_nonpositive(self):
        constraints = ConstraintSet.build(max_spatial={"L": 0})
        with pytest.raises(SpecError):
            constraints.spatial_cap("L", 12)

    def test_row_stationary_split(self):
        constraints = eyeriss_row_stationary()
        x = constraints.allowed_on_axis("GlobalBuffer", 0)
        y = constraints.allowed_on_axis("GlobalBuffer", 1)
        assert "Q" in x and "P" in x and "S" in x
        assert "R" in y and "C" in y and "M" in y
        assert x.isdisjoint(y)


class TestAxisConstraintsInGeneration:
    def test_axis_split_respected_by_samples(self, eyeriss, small_conv):
        space = MapSpace(
            eyeriss, small_conv, MapspaceKind.RUBY_S, eyeriss_row_stationary()
        )
        rng = random.Random(0)
        for _ in range(80):
            mapping = space.sample(rng)
            for nest in mapping.levels:
                for loop in nest.spatial:
                    if loop.bound == 1:
                        continue
                    if loop.axis == 0:
                        assert loop.dim in {"N", "P", "Q", "S"}
                    else:
                        assert loop.dim in {"C", "R", "M"}

    def test_axis_constraint_intersects_arch_restriction(self, simba):
        # Simba's arch allows only C/M/K spatially; a constraint narrowing
        # axis 0 to {C} leaves axis 0 with exactly {C} (K absent from the
        # GEMM-less conv dims is fine — intersection logic is what's
        # under test).
        constraints = ConstraintSet.build(
            axis_dims={"PEBuffer": ({"C"}, {"C", "M", "K"})}
        )
        slots = build_slots(simba, constraints)
        pe_spatial = [
            s for s in slots if s.spatial and s.level_name == "PEBuffer"
        ]
        x_slot = next(s for s in pe_spatial if s.axis == 0)
        assert x_slot.allowed_dims == frozenset({"C"})

    def test_axis_constraint_ignored_for_flat_fanout(self):
        from repro.arch import toy_linear_architecture

        constraints = ConstraintSet.build(axis_dims={"DRAM": ({"D"}, set())})
        slots = build_slots(toy_linear_architecture(9), constraints)
        spatial = [s for s in slots if s.spatial]
        # 1-D fanout -> one slot on axis 0, restricted to its x-set.
        assert len(spatial) == 1
        assert spatial[0].allowed_dims == frozenset({"D"})

#!/usr/bin/env python3
"""Quickstart: map one convolution layer onto an Eyeriss-like accelerator.

Searches the perfect-factorization (PFM / Timeloop-style) mapspace and the
paper's Ruby-S mapspace for the same layer, prints both best mappings as
loopnests, and compares EDP, energy, cycles, and PE-array utilization.

Run:  python examples/quickstart.py
"""

from repro import ConvLayer, eyeriss_like, find_best_mapping, render_mapping
from repro.mapspace.constraints import eyeriss_row_stationary


def main() -> None:
    # A ResNet-50 pointwise layer: C=512 input channels down to M=128,
    # on a 28x28 feature map. Its dims share no useful factors with a
    # 14x12 PE array -- the misalignment Ruby-S exists to fix.
    layer = ConvLayer("pointwise_512_128", c=512, m=128, p=28, q=28)
    workload = layer.workload()
    arch = eyeriss_like()

    print(arch.describe())
    print()
    print(f"Workload: {workload.describe()}")
    print()

    results = {}
    for kind in ("pfm", "ruby-s"):
        results[kind] = find_best_mapping(
            arch,
            workload,
            kind=kind,
            objective="edp",
            seed=0,
            max_evaluations=3000,
            patience=1000,
            constraints=eyeriss_row_stationary(),
        ).best

    for kind, best in results.items():
        print(f"=== best {kind} mapping ===")
        print(render_mapping(best.mapping))
        print(
            f"EDP {best.edp:.3e}  energy {best.energy_pj:.3e} pJ  "
            f"cycles {best.cycles:,}  utilization {best.utilization:.1%}"
        )
        print()

    pfm, ruby = results["pfm"], results["ruby-s"]
    print(
        f"Ruby-S vs PFM: EDP x{ruby.edp / pfm.edp:.2f}, "
        f"cycles x{ruby.cycles / pfm.cycles:.2f}, "
        f"utilization {pfm.utilization:.1%} -> {ruby.utilization:.1%}"
    )


if __name__ == "__main__":
    main()

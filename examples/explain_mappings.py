#!/usr/bin/env python3
"""Explain *why* a Ruby-S mapping beats a PFM mapping.

Searches both mapspaces for a misaligned pointwise layer, then prints the
full analysis report of each best mapping — buffer occupancy, access
profile (reads amortized per fill), and energy shares — so the mechanism
behind the EDP gap is visible: Ruby-S packs more of the array (higher
utilization, fewer cycles) while keeping the data-movement profile
comparable.

Run:  python examples/explain_mappings.py
"""

from repro import ConvLayer, eyeriss_like, find_best_mapping, render_mapping
from repro.mapspace.constraints import eyeriss_row_stationary
from repro.model import explain_mapping, format_report


def main() -> None:
    arch = eyeriss_like()
    layer = ConvLayer("pw_2048_512", c=2048, m=512, p=7, q=7)
    workload = layer.workload()
    constraints = eyeriss_row_stationary()

    reports = {}
    for kind in ("pfm", "ruby-s"):
        best = find_best_mapping(
            arch, workload, kind=kind, seed=3,
            max_evaluations=3000, patience=1000, constraints=constraints,
        ).best
        reports[kind] = best
        print(f"================ best {kind} mapping ================")
        print(render_mapping(best.mapping))
        print()
        print(format_report(explain_mapping(arch, workload, best.mapping)))
        print()

    pfm, ruby = reports["pfm"], reports["ruby-s"]
    print("================ verdict ================")
    print(
        f"EDP: ruby-s/pfm = {ruby.edp / pfm.edp:.3f}  "
        f"(utilization {pfm.utilization:.1%} -> {ruby.utilization:.1%}, "
        f"cycles x{ruby.cycles / pfm.cycles:.2f}, "
        f"energy x{ruby.energy_pj / pfm.energy_pj:.2f})"
    )


if __name__ == "__main__":
    main()

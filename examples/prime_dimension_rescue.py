#!/usr/bin/env python3
"""The prime-dimension story (paper Section III-B / Fig. 8), end to end.

A tensor dimension of 127 (prime) must be distributed over 16 PEs:

* perfect factorization cannot parallelize it at all (127 has no factors
  that fit the array, so the best PFM mapping is fully serial);
* the padding workaround rounds 127 up to 128 and parallelizes perfectly,
  but executes one ineffectual zero MAC — and at D = 113 wastes ~12%;
* Ruby-S runs ceil(127/16) = 8 steps — 7 full passes of 16 PEs plus one
  pass of 15 — with zero wasted work.

Run:  python examples/prime_dimension_rescue.py
"""

from repro import find_best_mapping, render_mapping, toy_linear_architecture
from repro.problem import pad_dimension
from repro.problem.gemm import vector_workload


def search(arch, workload, kind):
    return find_best_mapping(
        arch, workload, kind=kind, seed=0,
        max_evaluations=1500, patience=500,
    ).best


def show(label, best):
    print(f"--- {label} ---")
    print(render_mapping(best.mapping))
    print(
        f"cycles {best.cycles}  EDP {best.edp:.3e}  "
        f"energy {best.energy_pj:.3e} pJ"
    )
    print()


def main() -> None:
    arch = toy_linear_architecture(16)
    print(arch.describe())
    print()

    for size in (127, 113):
        workload = vector_workload(f"d{size}", size)
        padded = pad_dimension(workload, "D", 16)
        print(f"================ D = {size} ================")
        print(
            f"padding would execute {padded.padded_operations} MACs "
            f"({padded.overcompute_fraction:.1%} ineffectual)"
        )
        print()

        pfm = search(arch, workload, "pfm")
        show("PFM (no padding)", pfm)

        pad = search(arch, padded.workload, "pfm")
        show(f"PFM + pad to {padded.workload.size('D')}", pad)

        ruby = search(arch, workload, "ruby-s")
        show("Ruby-S (imperfect spatial factorization)", ruby)

        print(
            f"summary for D={size}: cycles PFM={pfm.cycles} "
            f"pad={pad.cycles} ruby-s={ruby.cycles}; "
            f"EDP ratio pad/ruby-s = {pad.edp / ruby.edp:.3f}"
        )
        print()


if __name__ == "__main__":
    main()

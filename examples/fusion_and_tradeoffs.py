#!/usr/bin/env python3
"""Composing Ruby-S with coarse-grained optimizations.

Three compositions the paper's introduction motivates:

1. **Fusion** — map a small 3-layer chain with Ruby-S, then keep the
   inter-layer activations on-chip (`repro.cascade`), saving DRAM round
   trips on top of the per-layer mapping wins.
2. **Energy/latency trade-off** — instead of one EDP-optimal mapping,
   sweep the whole (energy, cycles) Pareto frontier of one layer
   (`repro.search.ParetoSearch`) and pick by budget.
3. **Roofline** — locate the chosen mappings on the accelerator roofline
   (`repro.model.roofline`) to see whether more reuse or more PEs would
   pay next.

Run:  python examples/fusion_and_tradeoffs.py
"""

from repro import ConvLayer, Evaluator, eyeriss_like, find_best_mapping
from repro.cascade import evaluate_cascade, format_cascade
from repro.mapspace import ruby_s_mapspace
from repro.mapspace.constraints import eyeriss_row_stationary
from repro.model.roofline import roofline_point
from repro.search.pareto_search import ParetoSearch


def main() -> None:
    arch = eyeriss_like()
    constraints = eyeriss_row_stationary()
    chain_layers = [
        ConvLayer("block_reduce", c=256, m=64, p=14, q=14),
        ConvLayer("block_3x3", c=64, m=64, p=14, q=14, r=3, s=3),
        ConvLayer("block_expand", c=64, m=256, p=14, q=14),
    ]

    print("== 1. per-layer Ruby-S mappings, then fusion ==")
    stages = []
    for layer in chain_layers:
        workload = layer.workload()
        best = find_best_mapping(
            arch, workload, kind="ruby-s", seed=0,
            max_evaluations=2000, patience=600, constraints=constraints,
        ).best
        stages.append((workload, best))
    cascade = evaluate_cascade(arch, stages)
    print(format_cascade(cascade))
    print()

    print("== 2. energy/latency Pareto frontier of the 3x3 layer ==")
    workload = chain_layers[1].workload()
    space = ruby_s_mapspace(arch, workload, constraints)
    evaluator = Evaluator(arch, workload)
    frontier = ParetoSearch(space, evaluator, max_evaluations=3000, seed=0).run()
    for entry in frontier.frontier:
        print(
            f"  energy {entry.energy_pj:.3e} pJ   cycles {entry.cycles:>9,}  "
            f"util {entry.utilization:.1%}"
        )
    fastest = frontier.best_by("delay")
    leanest = frontier.best_by("energy")
    print(
        f"  span: the fastest mapping costs "
        f"{fastest.energy_pj / leanest.energy_pj:.2f}x the energy of the "
        f"leanest, which takes {leanest.cycles / fastest.cycles:.2f}x the cycles"
    )
    print()

    print("== 3. roofline position of the EDP-best mapping ==")
    best = frontier.best_by("edp")
    point = roofline_point(arch, workload, best)
    print(
        f"  operational intensity {point.operational_intensity:.1f} MACs/DRAM-byte, "
        f"throughput {point.achieved_ops_per_cycle:.1f}/{point.peak_ops_per_cycle:.0f} "
        f"MACs/cycle ({point.roof_fraction:.1%} of roof, "
        f"{'compute' if point.is_compute_bound else 'memory'}-bound)"
    )


if __name__ == "__main__":
    main()

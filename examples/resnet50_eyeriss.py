#!/usr/bin/env python3
"""ResNet-50 on an Eyeriss-like accelerator: the Fig. 10 experiment.

Searches PFM and Ruby-S mapspaces for a representative per-stage selection
of ResNet-50 layers (count-weighted to the full network), then prints the
per-layer and network-level comparison the paper reports: EDP, energy,
and cycles normalized to PFM, plus utilizations.

Run:  python examples/resnet50_eyeriss.py          (representative subset)
      python examples/resnet50_eyeriss.py --full   (all 25 unique layers)
"""

import sys

from repro.experiments.fig10 import format_fig10, run_fig10


def main() -> None:
    full = "--full" in sys.argv
    comparison = run_fig10(
        representative=not full,
        seeds=(1, 2),
        max_evaluations=2500,
        patience=800,
    )
    print(format_fig10(comparison))
    print()
    improvement = 100.0 * (1.0 - comparison.network_edp_ratio)
    cycles = 100.0 * (1.0 - comparison.network_cycles_ratio)
    energy = 100.0 * (comparison.network_energy_ratio - 1.0)
    print(
        f"Network summary: Ruby-S improves EDP by {improvement:.1f}% "
        f"(paper: 14%), cuts cycles by {cycles:.1f}% (paper: 17%), "
        f"energy change {energy:+.1f}% (paper: +2%)."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Architectural co-design with Ruby-S: the Fig. 13 / Fig. 14 sweep.

Sweeps Eyeriss-like PE arrays from 2x7 to 16x16, searches PFM and Ruby-S
for each design over a DeepBench subselection, and reports:

* area vs EDP per design and mapspace (the Fig. 13 scatter),
* which designs sit on each Pareto frontier,
* per-configuration EDP improvements (the Fig. 14 bars).

Run:  python examples/design_space_exploration.py
"""

from repro.experiments.fig13 import format_fig13, run_fig13


def main() -> None:
    result = run_fig13(
        suite="deepbench",
        max_evaluations=1500,
        patience=500,
    )
    print(format_fig13(result))
    print()

    print("Ruby-S Pareto frontier (area mm^2 -> EDP):")
    for point in result.ruby_s_frontier():
        print(f"  {point.payload['shape']:>7}: {point.x:8.3f} mm^2  "
              f"EDP {point.y:.3e}")
    print()
    print("PFM Pareto frontier:")
    for point in result.pfm_frontier():
        print(f"  {point.payload['shape']:>7}: {point.x:8.3f} mm^2  "
              f"EDP {point.y:.3e}")
    print()
    verdict = "forms" if result.ruby_s_dominates() else "does NOT form"
    print(f"Ruby-S {verdict} a new Pareto frontier over PFM (paper: forms).")


if __name__ == "__main__":
    main()
